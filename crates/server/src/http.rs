//! Minimal HTTP/1.1 on `std::net`: enough protocol to serve JSON match
//! requests and a Prometheus scrape — request-line + headers +
//! `Content-Length` bodies, keep-alive, nothing else (no chunked
//! encoding, no TLS, no HTTP/2).
//!
//! Reads are bounded everywhere: header block ≤ [`MAX_HEAD_BYTES`], body
//! ≤ [`MAX_BODY_BYTES`], and every poll iteration — idle *and*
//! mid-request — checks the stop predicate plus a deadline
//! ([`KEEP_ALIVE_IDLE`] while no request bytes have arrived,
//! [`REQUEST_DEADLINE`] once they have), so neither an idle keep-alive
//! connection nor a client stalling mid-headers or mid-body can pin a
//! handler thread or wedge shutdown. Writes are bounded by
//! [`WRITE_TIMEOUT`]; a client that stops reading its response is
//! treated as dead.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Maximum bytes of request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Idle keep-alive connections are closed after this long without a
/// complete request.
pub const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);
/// Once request bytes have arrived, the whole request (headers + body)
/// must complete within this long or the read fails with 400.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(10);
/// Socket write timeout: a response write that blocks this long marks
/// the connection dead.
pub const WRITE_TIMEOUT: Duration = Duration::from_secs(10);
/// Socket read timeout; also the cadence at which the stop predicate is
/// polled while waiting for bytes.
pub const READ_POLL: Duration = Duration::from_millis(50);

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query string, untouched).
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the request was HTTP/1.0 (whose connection default is
    /// close, not keep-alive).
    pub http10: bool,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should close after this request: an
    /// explicit `Connection: close`, or an HTTP/1.0 request without an
    /// explicit `Connection: keep-alive` (1.0's default is close).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => true,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => false,
            _ => self.http10,
        }
    }
}

/// Why reading a request failed (beyond a clean close).
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure; the connection is unusable.
    Io(io::Error),
    /// Headers or body exceeded the fixed limits → respond 413.
    TooLarge,
    /// The bytes were not valid HTTP → respond 400.
    Malformed(&'static str),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request from `stream`. `carry` holds bytes left over from
/// the previous read on this connection (pipelining) and is updated in
/// place. Returns `Ok(None)` on a clean close: EOF, idle timeout, or
/// `stop()` turning true (a request stalled mid-flight when the stop
/// fires is abandoned so the handler can exit). A stall past the
/// deadline with a request partially read is `Malformed` → 400.
pub fn read_request(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    stop: &dyn Fn() -> bool,
) -> Result<Option<Request>, HttpError> {
    read_request_with_deadline(stream, carry, stop, REQUEST_DEADLINE)
}

/// [`read_request`] with an explicit per-request deadline (tests use a
/// short one; production callers use [`REQUEST_DEADLINE`]).
pub fn read_request_with_deadline(
    stream: &mut TcpStream,
    carry: &mut Vec<u8>,
    stop: &dyn Fn() -> bool,
    deadline: Duration,
) -> Result<Option<Request>, HttpError> {
    let started = Instant::now();
    let mut chunk = [0u8; 4096];
    // Phase 1: accumulate until the end-of-headers marker. Stop and
    // deadline are checked on every poll iteration — not only while the
    // buffer is empty — so a client stalling mid-headers cannot pin
    // this handler past the deadline or across a shutdown.
    let head_end = loop {
        if let Some(pos) = find_head_end(carry) {
            break pos;
        }
        if carry.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        if stop() {
            return Ok(None);
        }
        let limit = if carry.is_empty() {
            KEEP_ALIVE_IDLE
        } else {
            deadline
        };
        if started.elapsed() > limit {
            return if carry.is_empty() {
                Ok(None)
            } else {
                Err(HttpError::Malformed("request header read timed out"))
            };
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if carry.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpError::Malformed("connection closed mid-request"))
                };
            }
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    };

    let head = std::str::from_utf8(&carry[..head_end])
        .map_err(|_| HttpError::Malformed("non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .filter(|p| p.starts_with('/'))
        .ok_or(HttpError::Malformed("missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    let http10 = version == "HTTP/1.0";
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // Only Content-Length framing is implemented; silently ignoring
    // Transfer-Encoding would desync the stream (the chunked body would
    // be parsed as a pipelined request — a smuggling vector behind a
    // proxy), so reject it outright.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(HttpError::Malformed(
            "Transfer-Encoding is not supported; frame the body with Content-Length",
        ));
    }

    let body_len = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("invalid content-length"))?,
        None => 0,
    };
    if body_len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }

    // Phase 2: read the body (head_end + 4 skips the \r\n\r\n). Same
    // stop/deadline discipline as phase 1: a client that declares
    // Content-Length and then stalls cannot hold the handler.
    let body_start = head_end + 4;
    while carry.len() < body_start + body_len {
        if stop() {
            return Ok(None);
        }
        if started.elapsed() > deadline {
            return Err(HttpError::Malformed("request body read timed out"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpError::Malformed("connection closed mid-body")),
            Ok(n) => carry.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    let body = carry[body_start..body_start + body_len].to_vec();
    carry.drain(..body_start + body_len);
    Ok(Some(Request {
        method,
        path,
        headers,
        body,
        http10,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response about to be written.
#[derive(Debug)]
pub struct Response {
    /// Status code (200, 400, 404, 405, 413, 429, 503).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Optional `Retry-After` header (seconds) — set on 429s.
    pub retry_after: Option<u32>,
}

impl Response {
    /// A JSON response with the given status and body.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A JSON error response `{"error": "..."}`.
    pub fn error(status: u16, message: &str) -> Self {
        Self::json(
            status,
            format!("{{\"error\":\"{}\"}}", crate::json::escape(message)),
        )
    }

    /// Sets `Retry-After`, builder style.
    pub fn with_retry_after(mut self, seconds: u32) -> Self {
        self.retry_after = Some(seconds);
        self
    }
}

/// Canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serialises `resp` (with `Connection: close` when `close` is set).
pub fn render_response(resp: &Response, close: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(resp.body.len() + 256);
    out.extend_from_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status)).as_bytes(),
    );
    out.extend_from_slice(format!("Content-Type: {}\r\n", resp.content_type).as_bytes());
    out.extend_from_slice(format!("Content-Length: {}\r\n", resp.body.len()).as_bytes());
    if let Some(secs) = resp.retry_after {
        out.extend_from_slice(format!("Retry-After: {secs}\r\n").as_bytes());
    }
    out.extend_from_slice(if close {
        b"Connection: close\r\n"
    } else {
        b"Connection: keep-alive\r\n"
    });
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(&resp.body);
    out
}

/// Writes `resp` to `stream`.
pub fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> io::Result<()> {
    stream.write_all(&render_response(resp, close))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_read_timeout(Some(READ_POLL)).unwrap();
        (client, server)
    }

    #[test]
    fn parses_pipelined_requests() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                b"POST /match HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        let mut carry = Vec::new();
        let r1 = read_request(&mut server, &mut carry, &|| false)
            .unwrap()
            .unwrap();
        assert_eq!(r1.method, "POST");
        assert_eq!(r1.path, "/match");
        assert_eq!(r1.body, b"hi");
        let r2 = read_request(&mut server, &mut carry, &|| false)
            .unwrap()
            .unwrap();
        assert_eq!(r2.method, "GET");
        assert_eq!(r2.path, "/metrics");
        assert!(r2.body.is_empty());
        drop(client);
        assert!(matches!(
            read_request(&mut server, &mut carry, &|| false),
            Ok(None)
        ));
    }

    #[test]
    fn stop_predicate_closes_idle_connection() {
        let (_client, mut server) = pair();
        let mut carry = Vec::new();
        let got = read_request(&mut server, &mut carry, &|| true).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn stalled_header_released_by_stop() {
        let (mut client, mut server) = pair();
        // Partial header, then the client stalls forever.
        client
            .write_all(b"POST /match HTTP/1.1\r\nContent-Le")
            .unwrap();
        let mut carry = Vec::new();
        // Let a few polls consume the partial bytes, then flip stop: the
        // read must return instead of spinning until a socket timeout.
        let polls = std::cell::Cell::new(0u32);
        let stop = || {
            polls.set(polls.get() + 1);
            polls.get() > 3
        };
        let got = read_request(&mut server, &mut carry, &stop).unwrap();
        assert!(got.is_none());
        assert!(!carry.is_empty(), "partial header bytes were consumed");
    }

    #[test]
    fn stalled_body_hits_deadline() {
        let (mut client, mut server) = pair();
        // Declared body of 10 bytes, only 2 ever sent.
        client
            .write_all(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi")
            .unwrap();
        let mut carry = Vec::new();
        let got = read_request_with_deadline(
            &mut server,
            &mut carry,
            &|| false,
            Duration::from_millis(150),
        );
        assert!(matches!(got, Err(HttpError::Malformed(_))), "{got:?}");
    }

    #[test]
    fn rejects_transfer_encoding() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nhi\r\n0\r\n\r\n",
            )
            .unwrap();
        let mut carry = Vec::new();
        match read_request(&mut server, &mut carry, &|| false) {
            Err(HttpError::Malformed(msg)) => assert!(msg.contains("Transfer-Encoding"), "{msg}"),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn http10_connection_defaults() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                b"GET /a HTTP/1.0\r\n\r\nGET /b HTTP/1.0\r\nConnection: keep-alive\r\n\r\nGET /c HTTP/1.1\r\n\r\n",
            )
            .unwrap();
        let mut carry = Vec::new();
        let r1 = read_request(&mut server, &mut carry, &|| false)
            .unwrap()
            .unwrap();
        assert!(r1.http10 && r1.wants_close(), "HTTP/1.0 defaults to close");
        let r2 = read_request(&mut server, &mut carry, &|| false)
            .unwrap()
            .unwrap();
        assert!(
            !r2.wants_close(),
            "explicit keep-alive overrides the 1.0 default"
        );
        let r3 = read_request(&mut server, &mut carry, &|| false)
            .unwrap()
            .unwrap();
        assert!(
            !r3.http10 && !r3.wants_close(),
            "HTTP/1.1 defaults to keep-alive"
        );
    }

    #[test]
    fn rejects_oversized_and_malformed() {
        let (mut client, mut server) = pair();
        client
            .write_all(
                format!(
                    "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    MAX_BODY_BYTES + 1
                )
                .as_bytes(),
            )
            .unwrap();
        let mut carry = Vec::new();
        assert!(matches!(
            read_request(&mut server, &mut carry, &|| false),
            Err(HttpError::TooLarge)
        ));

        let (mut client2, mut server2) = pair();
        client2.write_all(b"NONSENSE\r\n\r\n").unwrap();
        let mut carry2 = Vec::new();
        assert!(matches!(
            read_request(&mut server2, &mut carry2, &|| false),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn renders_retry_after() {
        let resp = Response::error(429, "busy").with_retry_after(2);
        let text = String::from_utf8(render_response(&resp, true)).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"busy\"}"));
    }
}
