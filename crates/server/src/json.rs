//! Minimal hand-rolled JSON: the workspace is vendored-only and
//! `vendor/serde` is a no-op derive stand-in, so the wire format is
//! parsed and written by hand here.
//!
//! The parser is a straightforward recursive-descent over bytes with a
//! nesting-depth limit; numbers are `f64` (every integer the protocol
//! carries — vertex ids, labels, limits — fits exactly). Errors carry a
//! byte offset so malformed request bodies get a pointable diagnostic.
//!
//! Counts, however, are `u64` and a count-only query over a huge data
//! hypergraph can exceed 2^53 — past which `f64` transport silently
//! corrupts low bits. The wire contract is therefore *split encoding*:
//! writers emit a `u64` as a bare JSON number while it is exactly
//! representable ([`MAX_SAFE_INT`]) and as a decimal *string* beyond;
//! readers accept both via [`Json::as_u64_lossless`].

/// Maximum nesting depth accepted by [`parse`]. Request bodies are flat
/// (an object of arrays), so this only guards against hostile inputs.
const MAX_DEPTH: usize = 32;

/// Largest integer exactly representable in an `f64` *and* unambiguous on
/// the wire: 2^53 − 1 (JavaScript's `MAX_SAFE_INTEGER`). At 2^53 itself
/// the neighbouring integer 2^53 + 1 parses to the same float, so 2^53 is
/// already past the lossless range.
pub const MAX_SAFE_INT: u64 = (1 << 53) - 1;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys: first wins via
    /// [`Json::get`]).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly and
    /// unambiguously (≤ [`MAX_SAFE_INT`]; larger numbers collide with a
    /// neighbouring integer after the `f64` round-trip, so they are
    /// rejected rather than silently truncated).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= MAX_SAFE_INT as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a non-negative integer under the split encoding: a
    /// plain number within the safe range, or a decimal string beyond it
    /// (the form [`write_u64`] emits).
    pub fn as_u64_lossless(&self) -> Option<u64> {
        match self {
            Json::Num(_) => self.as_u64(),
            Json::Str(s) if !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit()) => {
                s.parse::<u64>().ok()
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &[u8]) -> Result<Json, String> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing data after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(self.err("JSON nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, String> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid surrogate pair"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences verbatim).
                    let rest = std::str::from_utf8(&self.input[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.input.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.input[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Appends `v` to `out` under the split encoding: a bare number while
/// exactly representable in an `f64` (≤ [`MAX_SAFE_INT`]), a quoted
/// decimal string beyond — so a count near 2^64 survives any
/// float-based JSON reader untouched and ours losslessly
/// ([`Json::as_u64_lossless`]).
pub fn write_u64(out: &mut String, v: u64) {
    if v <= MAX_SAFE_INT {
        out.push_str(&v.to_string());
    } else {
        out.push('"');
        out.push_str(&v.to_string());
        out.push('"');
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_shape() {
        let doc = br#"{"tenant":"acme","labels":[0,0,1],"edges":[[0,1,2],[2,1]],"collect":true,"max_results":10}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("tenant").and_then(Json::as_str), Some("acme"));
        let labels: Vec<u64> = v
            .get("labels")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|l| l.as_u64().unwrap())
            .collect();
        assert_eq!(labels, vec![0, 0, 1]);
        assert_eq!(v.get("edges").and_then(Json::as_arr).unwrap().len(), 2);
        assert_eq!(v.get("collect").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("max_results").and_then(Json::as_u64), Some(10));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\nA😀""#.as_bytes()).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA😀"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse(b"{").is_err());
        assert!(parse(b"[1,]").is_err());
        assert!(parse(b"01a").is_err());
        assert!(parse(b"\"unterminated").is_err());
        assert!(parse(b"{\"a\":1} extra").is_err());
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(parse(deep.as_bytes()).is_err());
    }

    #[test]
    fn numbers_round_trip_integers() {
        assert_eq!(parse(b"42").unwrap().as_u64(), Some(42));
        assert_eq!(parse(b"-1").unwrap().as_u64(), None);
        assert_eq!(parse(b"1.5").unwrap().as_u64(), None);
        assert_eq!(parse(b"1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn u64_is_lossless_around_the_f64_boundary() {
        // 2^53 - 1 is the last unambiguous plain number.
        assert_eq!(MAX_SAFE_INT, 9007199254740991);
        assert_eq!(
            parse(b"9007199254740991").unwrap().as_u64(),
            Some(MAX_SAFE_INT)
        );
        // 2^53 and 2^53 + 1 parse to the *same* f64 — a plain number
        // there is ambiguous, so both are rejected, not truncated.
        assert_eq!(
            parse(b"9007199254740992").unwrap(),
            parse(b"9007199254740993").unwrap()
        );
        assert_eq!(parse(b"9007199254740992").unwrap().as_u64(), None);
        assert_eq!(parse(b"9007199254740993").unwrap().as_u64_lossless(), None);

        // The split encoding round-trips every u64 exactly.
        for v in [
            0,
            MAX_SAFE_INT,
            MAX_SAFE_INT + 1,
            MAX_SAFE_INT + 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut doc = String::from("{\"count\":");
            write_u64(&mut doc, v);
            doc.push('}');
            let parsed = parse(doc.as_bytes()).unwrap();
            assert_eq!(
                parsed.get("count").and_then(Json::as_u64_lossless),
                Some(v),
                "round-trip failed for {v} via {doc}"
            );
            // Within the safe range the encoding stays a plain number
            // (no behaviour change for existing float-based readers).
            assert_eq!(
                parsed.get("count").and_then(Json::as_u64).is_some(),
                v <= MAX_SAFE_INT
            );
        }

        // Non-canonical strings are not numbers.
        assert_eq!(parse(b"\"\"").unwrap().as_u64_lossless(), None);
        assert_eq!(parse(b"\"12x\"").unwrap().as_u64_lossless(), None);
        assert_eq!(
            parse(b"\"99999999999999999999999\"")
                .unwrap()
                .as_u64_lossless(),
            None,
            "overflowing decimal strings are rejected"
        );
    }

    #[test]
    fn escape_emits_valid_literals() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
