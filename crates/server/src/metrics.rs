//! Prometheus text-format rendering of the serving counters.
//!
//! The output format is a stability contract: dashboards and the CI
//! golden test parse it. Families are emitted in a fixed order, labels
//! in deterministic (sorted) order, durations as seconds with six
//! decimals. Add new families at the end of their section rather than
//! reordering.

use crate::tenant::TenantCounters;
use hgmatch_core::serve::{ServeStats, WorkerServeStats};
use std::fmt::Write as _;
use std::time::Duration;

/// Front-door counter snapshot rendered alongside the engine stats.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DoorSnapshot {
    /// HTTP requests parsed (any path, any outcome).
    pub http_requests: u64,
    /// Responses by status code, ascending code order.
    pub responses: Vec<(u16, u64)>,
    /// Requests shed because the submission queue was full.
    pub shed_queue_full: u64,
    /// Requests shed by a tenant quota.
    pub shed_quota: u64,
    /// Requests shed by cost-based admission control.
    pub shed_cost: u64,
    /// Connections accepted from the listener.
    pub connections_accepted: u64,
    /// Connections turned away because the accept backlog was full.
    pub connections_rejected: u64,
    /// Match requests currently queued or executing.
    pub in_flight: u64,
}

fn secs(d: Duration) -> String {
    format!("{:.6}", d.as_secs_f64())
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, "counter", help);
    let _ = writeln!(out, "{name} {value}");
}

fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    family(out, name, "gauge", help);
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the full scrape document.
pub fn render(
    stats: &ServeStats,
    workers: &[WorkerServeStats],
    door: &DoorSnapshot,
    tenants: &[TenantCounters],
) -> String {
    let mut out = String::with_capacity(4096);

    // Engine: query lifecycle.
    counter(
        &mut out,
        "hgmatch_queries_admitted_total",
        "Queries admitted to the match engine.",
        stats.admitted,
    );
    counter(
        &mut out,
        "hgmatch_queries_completed_total",
        "Queries that exhausted their search space.",
        stats.completed,
    );
    counter(
        &mut out,
        "hgmatch_queries_limit_reached_total",
        "Queries stopped at their result limit.",
        stats.limit_reached,
    );
    counter(
        &mut out,
        "hgmatch_queries_timed_out_total",
        "Queries stopped by their wall-clock budget.",
        stats.timed_out,
    );
    counter(
        &mut out,
        "hgmatch_queries_cancelled_total",
        "Queries cancelled by their submitter or shutdown.",
        stats.cancelled,
    );
    gauge(
        &mut out,
        "hgmatch_queries_active",
        "Queries admitted and not yet finished.",
        stats.active as u64,
    );

    // Engine: scheduler.
    counter(
        &mut out,
        "hgmatch_tasks_spawned_total",
        "Scheduler tasks spawned across all queries.",
        stats.tasks_spawned,
    );
    counter(
        &mut out,
        "hgmatch_tasks_executed_total",
        "Scheduler tasks executed across all queries.",
        stats.tasks_executed,
    );
    counter(
        &mut out,
        "hgmatch_steals_total",
        "Successful inter-worker steals.",
        stats.steals,
    );
    counter(
        &mut out,
        "hgmatch_splits_total",
        "Expansions split for work assisting.",
        stats.splits,
    );
    counter(
        &mut out,
        "hgmatch_assists_total",
        "Assist tickets that claimed work.",
        stats.assists,
    );

    // Engine: plan cache and adaptivity.
    counter(
        &mut out,
        "hgmatch_plan_cache_hits_total",
        "Submissions that skipped planning via the plan cache.",
        stats.plan_cache_hits,
    );
    counter(
        &mut out,
        "hgmatch_plan_cache_misses_total",
        "Submissions that ran the planner.",
        stats.plan_cache_misses,
    );
    gauge(
        &mut out,
        "hgmatch_plan_cache_size",
        "Plans currently cached.",
        stats.plan_cache_size as u64,
    );
    counter(
        &mut out,
        "hgmatch_plans_invalidated_total",
        "Cached plans dropped by data updates.",
        stats.plans_invalidated,
    );
    counter(
        &mut out,
        "hgmatch_plans_replanned_total",
        "Cached plans dropped for cardinality drift.",
        stats.plans_replanned,
    );
    counter(
        &mut out,
        "hgmatch_replans_midquery_total",
        "Suffix re-plans adopted mid-query.",
        stats.replans_midquery,
    );
    counter(
        &mut out,
        "hgmatch_estimate_corrections_total",
        "Corrected plans written back to the cache.",
        stats.estimate_corrections,
    );

    // Engine: latency split (the saturation signal).
    family(
        &mut out,
        "hgmatch_queue_wait_seconds_total",
        "counter",
        "Seconds finished queries spent waiting for first worker pickup.",
    );
    let _ = writeln!(
        out,
        "hgmatch_queue_wait_seconds_total {}",
        secs(stats.queue_wait_total)
    );
    family(
        &mut out,
        "hgmatch_execution_seconds_total",
        "counter",
        "Seconds finished queries spent executing after first pickup.",
    );
    let _ = writeln!(
        out,
        "hgmatch_execution_seconds_total {}",
        secs(stats.execution_total)
    );
    gauge(
        &mut out,
        "hgmatch_data_epoch",
        "Epoch of the published data snapshot.",
        stats.data_epoch,
    );

    // Engine: per-worker accounting.
    family(
        &mut out,
        "hgmatch_worker_busy_seconds_total",
        "counter",
        "Seconds each resident worker spent executing tasks.",
    );
    for (i, w) in workers.iter().enumerate() {
        let _ = writeln!(
            out,
            "hgmatch_worker_busy_seconds_total{{worker=\"{i}\"}} {}",
            secs(w.busy)
        );
    }
    family(
        &mut out,
        "hgmatch_worker_tasks_total",
        "counter",
        "Tasks each resident worker executed.",
    );
    for (i, w) in workers.iter().enumerate() {
        let _ = writeln!(
            out,
            "hgmatch_worker_tasks_total{{worker=\"{i}\"}} {}",
            w.tasks
        );
    }

    // Engine: result aggregation (DESIGN.md §18.5). found vs materialized
    // diverging is the zero-materialization modes working as intended.
    counter(
        &mut out,
        "hgmatch_results_found_total",
        "Embeddings found across finished queries (exact in every mode).",
        stats.results_found,
    );
    counter(
        &mut out,
        "hgmatch_results_materialized_total",
        "Embeddings actually materialised and handed to sinks.",
        stats.results_materialized,
    );
    family(
        &mut out,
        "hgmatch_queries_aggregate_total",
        "counter",
        "Finished queries by aggregation mode.",
    );
    for (mode, n) in [
        ("count_only", stats.queries_count_only),
        ("materialize", stats.queries_materialize),
        ("sampled", stats.queries_sampled),
        ("top_k", stats.queries_top_k),
    ] {
        let _ = writeln!(
            out,
            "hgmatch_queries_aggregate_total{{mode=\"{mode}\"}} {n}"
        );
    }

    // Front door: HTTP.
    counter(
        &mut out,
        "hgmatch_http_requests_total",
        "HTTP requests parsed.",
        door.http_requests,
    );
    family(
        &mut out,
        "hgmatch_http_responses_total",
        "counter",
        "HTTP responses by status code.",
    );
    for (code, n) in &door.responses {
        let _ = writeln!(out, "hgmatch_http_responses_total{{code=\"{code}\"}} {n}");
    }
    family(
        &mut out,
        "hgmatch_shed_total",
        "counter",
        "Match requests rejected with 429, by reason.",
    );
    let _ = writeln!(
        out,
        "hgmatch_shed_total{{reason=\"cost\"}} {}",
        door.shed_cost
    );
    let _ = writeln!(
        out,
        "hgmatch_shed_total{{reason=\"queue_full\"}} {}",
        door.shed_queue_full
    );
    let _ = writeln!(
        out,
        "hgmatch_shed_total{{reason=\"quota\"}} {}",
        door.shed_quota
    );
    counter(
        &mut out,
        "hgmatch_connections_accepted_total",
        "Connections accepted from the listener.",
        door.connections_accepted,
    );
    counter(
        &mut out,
        "hgmatch_connections_rejected_total",
        "Connections turned away by accept backpressure.",
        door.connections_rejected,
    );
    gauge(
        &mut out,
        "hgmatch_requests_in_flight",
        "Match requests currently queued or executing.",
        door.in_flight,
    );

    // Front door: per-tenant.
    family(
        &mut out,
        "hgmatch_tenant_admitted_total",
        "counter",
        "Requests admitted per tenant.",
    );
    for t in tenants {
        let _ = writeln!(
            out,
            "hgmatch_tenant_admitted_total{{tenant=\"{}\"}} {}",
            crate::json::escape(&t.tenant),
            t.admitted
        );
    }
    family(
        &mut out,
        "hgmatch_tenant_shed_total",
        "counter",
        "Requests shed per tenant.",
    );
    for t in tenants {
        let _ = writeln!(
            out,
            "hgmatch_tenant_shed_total{{tenant=\"{}\"}} {}",
            crate::json::escape(&t.tenant),
            t.shed
        );
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically() {
        let stats = ServeStats::default();
        let workers = [WorkerServeStats::default(); 2];
        let door = DoorSnapshot {
            responses: vec![(200, 3), (429, 1)],
            ..DoorSnapshot::default()
        };
        let tenants = [TenantCounters {
            tenant: "acme".into(),
            admitted: 3,
            shed: 1,
        }];
        let a = render(&stats, &workers, &door, &tenants);
        let b = render(&stats, &workers, &door, &tenants);
        assert_eq!(a, b);
        assert!(a.contains("hgmatch_http_responses_total{code=\"429\"} 1"));
        assert!(a.contains("hgmatch_tenant_admitted_total{tenant=\"acme\"} 3"));
        assert!(a.contains("hgmatch_worker_busy_seconds_total{worker=\"1\"} 0.000000"));
        // Every non-comment line is `name[{labels}] value`.
        for line in a.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').unwrap();
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparsable value in {line:?}");
        }
    }
}
