//! Per-tenant admission quotas: a token bucket per tenant name plus
//! admitted/shed counters for the `/metrics` endpoint.
//!
//! Buckets refill continuously at `qps` tokens per second up to a burst
//! of `max(qps, 1)`, so a tenant that has been quiet can always send at
//! least one request immediately. `qps == 0` disables rate limiting
//! (every tenant is admitted) but the counters still accumulate.
//!
//! The tenant map is bounded: past [`MAX_TENANTS`] distinct names, new
//! tenants share one `"_overflow"` bucket so a client inventing a fresh
//! tenant name per request cannot grow server memory (or dodge the
//! quota for long).

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::time::Instant;

/// Distinct tenant buckets tracked before lumping into `"_overflow"`.
pub const MAX_TENANTS: usize = 256;

/// Name that absorbs tenants past the [`MAX_TENANTS`] cap.
pub const OVERFLOW_TENANT: &str = "_overflow";

#[derive(Debug)]
struct TenantState {
    tokens: f64,
    refilled: Instant,
    admitted: u64,
    shed: u64,
}

/// Per-tenant counter snapshot, for metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantCounters {
    /// Tenant name (possibly [`OVERFLOW_TENANT`]).
    pub tenant: String,
    /// Requests that passed the quota gate.
    pub admitted: u64,
    /// Requests shed for any reason (quota, queue, cost).
    pub shed: u64,
}

/// The quota governor shared by all connection handlers.
#[derive(Debug)]
pub struct TenantGovernor {
    qps: f64,
    burst: f64,
    // BTreeMap for deterministic /metrics ordering.
    state: Mutex<BTreeMap<String, TenantState>>,
}

impl TenantGovernor {
    /// A governor refilling each tenant at `qps` requests/second
    /// (`0` disables rate limiting).
    pub fn new(qps: f64) -> Self {
        let qps = if qps.is_finite() && qps > 0.0 {
            qps
        } else {
            0.0
        };
        TenantGovernor {
            qps,
            burst: qps.max(1.0),
            state: Mutex::new(BTreeMap::new()),
        }
    }

    fn resolve<'a>(map: &BTreeMap<String, TenantState>, tenant: &'a str) -> &'a str {
        if map.contains_key(tenant) || map.len() < MAX_TENANTS {
            tenant
        } else {
            OVERFLOW_TENANT
        }
    }

    /// Takes one token from `tenant`'s bucket. On refusal returns the
    /// seconds until a token will be available (the `Retry-After` value).
    pub fn try_admit(&self, tenant: &str, now: Instant) -> Result<(), f64> {
        let mut map = self.state.lock();
        let key = Self::resolve(&map, tenant).to_string();
        let entry = map.entry(key).or_insert_with(|| TenantState {
            tokens: self.burst,
            refilled: now,
            admitted: 0,
            shed: 0,
        });
        if self.qps > 0.0 {
            let elapsed = now.saturating_duration_since(entry.refilled).as_secs_f64();
            entry.tokens = (entry.tokens + elapsed * self.qps).min(self.burst);
            entry.refilled = now;
            if entry.tokens < 1.0 {
                entry.shed += 1;
                return Err((1.0 - entry.tokens) / self.qps);
            }
            entry.tokens -= 1.0;
        }
        entry.admitted += 1;
        Ok(())
    }

    /// Records a shed that happened past the quota gate (queue-full or
    /// cost rejection), so per-tenant shed counts cover every 429.
    pub fn record_shed(&self, tenant: &str, now: Instant) {
        let mut map = self.state.lock();
        let key = Self::resolve(&map, tenant).to_string();
        let entry = map.entry(key).or_insert_with(|| TenantState {
            tokens: self.burst,
            refilled: now,
            admitted: 0,
            shed: 0,
        });
        // The request was admitted by the quota before being shed
        // downstream; move it from the admitted to the shed column.
        entry.admitted = entry.admitted.saturating_sub(1);
        entry.shed += 1;
    }

    /// Counter snapshot in deterministic (name) order.
    pub fn snapshot(&self) -> Vec<TenantCounters> {
        self.state
            .lock()
            .iter()
            .map(|(tenant, s)| TenantCounters {
                tenant: tenant.clone(),
                admitted: s.admitted,
                shed: s.shed,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn zero_qps_admits_everything() {
        let gov = TenantGovernor::new(0.0);
        let now = Instant::now();
        for _ in 0..1000 {
            gov.try_admit("t", now).unwrap();
        }
        let snap = gov.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].admitted, 1000);
        assert_eq!(snap[0].shed, 0);
    }

    #[test]
    fn bucket_limits_burst_and_refills() {
        let gov = TenantGovernor::new(2.0); // burst = 2
        let t0 = Instant::now();
        assert!(gov.try_admit("a", t0).is_ok());
        assert!(gov.try_admit("a", t0).is_ok());
        let retry = gov.try_admit("a", t0).unwrap_err();
        assert!(retry > 0.0 && retry <= 0.5, "retry={retry}");
        // Half a second refills one token at 2 qps.
        let t1 = t0 + Duration::from_millis(600);
        assert!(gov.try_admit("a", t1).is_ok());
        assert!(gov.try_admit("a", t1).is_err());
        // Tenants are independent.
        assert!(gov.try_admit("b", t0).is_ok());
    }

    #[test]
    fn tenant_map_is_bounded() {
        let gov = TenantGovernor::new(0.0);
        let now = Instant::now();
        for i in 0..(MAX_TENANTS + 50) {
            gov.try_admit(&format!("tenant-{i:04}"), now).unwrap();
        }
        let snap = gov.snapshot();
        assert_eq!(snap.len(), MAX_TENANTS + 1);
        let overflow = snap.iter().find(|c| c.tenant == OVERFLOW_TENANT).unwrap();
        assert_eq!(overflow.admitted, 50);
    }

    #[test]
    fn downstream_shed_moves_the_count() {
        let gov = TenantGovernor::new(0.0);
        let now = Instant::now();
        gov.try_admit("t", now).unwrap();
        gov.record_shed("t", now);
        let snap = gov.snapshot();
        assert_eq!(snap[0].admitted, 0);
        assert_eq!(snap[0].shed, 1);
    }
}
