//! # hgmatch-server
//!
//! The network front door for the [`hgmatch_core::serve::MatchServer`]
//! resident serving layer: a small HTTP/1.1 server on `std::net` that
//! translates JSON match requests into engine submissions, with the
//! admission machinery a multi-tenant deployment needs in front of an
//! expensive query engine (DESIGN.md §16):
//!
//! * **per-tenant quotas** — a token bucket per tenant name
//!   ([`tenant::TenantGovernor`]), refilling at `tenant_qps`;
//! * **queue-depth backpressure** — at most `queue_depth` match requests
//!   queued or executing; past that, HTTP 429 with `Retry-After` instead
//!   of unbounded queue growth;
//! * **cost-based admission control** — under load (queue more than half
//!   full) the planner's cost estimate
//!   ([`hgmatch_core::serve::MatchServer::estimate_cost`]) gates
//!   admission: predicted-expensive queries are shed with 429 so cheap
//!   queries keep their latency. The estimate routes through the plan
//!   cache, so an admitted query's subsequent submission replans nothing;
//! * **observability** — `GET /metrics` renders every engine and door
//!   counter in Prometheus text format ([`metrics::render`]), including
//!   the queue-wait vs execution latency split that makes saturation
//!   visible;
//! * **graceful shutdown** — the listener stops accepting, in-flight
//!   queries run to completion, late-queued requests get 503, and the
//!   engine pool drains before [`FrontDoor::shutdown`] returns.
//!
//! ## Protocol
//!
//! `POST /match` with a JSON body:
//!
//! ```json
//! {
//!   "tenant": "acme",
//!   "labels": [0, 0, 1],
//!   "edges": [[0, 1, 2], [2, 1]],
//!   "collect": false,
//!   "max_results": 100,
//!   "timeout_ms": 1000,
//!   "aggregate": {"mode": "top_k", "k": 10, "score": "edge_id_sum"}
//! }
//! ```
//!
//! `labels[i]` is the label of query vertex `i`; `edges` lists the query
//! hyperedges over those vertex ids. The request shape is validated by
//! the same [`hgmatch_core::validate_query_shape`] the CLI uses, so an
//! over-long or empty query is rejected identically on both entry paths.
//! A 200 response carries the outcome: status, count, the latency split,
//! the matched data-edge tuples the aggregation mode kept, and an
//! `aggregate` summary object (DESIGN.md §18.5).
//!
//! The optional `aggregate` object selects the result-aggregation mode:
//! `{"mode":"materialize"}`, `{"mode":"count_only"}`,
//! `{"mode":"top_k","k":K,"score":"edge_id_sum"|"min_edge"|"hash"}` or
//! `{"mode":"sampled","budget":B,"seed":S}`. When absent, `collect`
//! chooses between materialize and count-only as before. Counts ride the
//! split `u64` encoding ([`json::write_u64`]): a bare number within
//! `f64`'s exact range, a decimal string beyond — never a corrupted
//! float.

pub mod http;
pub mod json;
pub mod metrics;
pub mod tenant;

use hgmatch_core::serve::{ServeStats, WorkerServeStats};
use hgmatch_core::{
    AggregateMode, AggregateSummary, MatchServer, QueryOptions, QueryOutcome, ScoreFn, ServeConfig,
};
use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};
use http::{HttpError, Request, Response};
use metrics::DoorSnapshot;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest accepted tenant name; longer names are rejected with 400.
pub const MAX_TENANT_LEN: usize = 64;

/// Tenant used when a request names none.
pub const DEFAULT_TENANT: &str = "default";

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(2);

/// Front-door configuration. Construct with [`FrontDoorConfig::default`]
/// and override fields, or [`FrontDoorConfig::from_env`] to layer the
/// `HGMATCH_LISTEN_ADDR` / `HGMATCH_QUEUE_DEPTH` / `HGMATCH_TENANT_QPS`
/// environment variables over the defaults.
#[derive(Debug, Clone)]
pub struct FrontDoorConfig {
    /// Bind address (`127.0.0.1:0` picks a free port; see
    /// [`FrontDoor::local_addr`]).
    pub addr: String,
    /// Connection-handler threads (each serves one connection at a time).
    pub http_threads: usize,
    /// Accepted connections waiting for a handler before the accept loop
    /// itself starts turning connections away with 429.
    pub pending_connections: usize,
    /// Maximum match requests queued or executing before new ones are
    /// shed with 429 + `Retry-After` (the submission-queue bound).
    pub queue_depth: usize,
    /// Per-tenant token-bucket refill rate in requests/second
    /// (0 disables quotas).
    pub tenant_qps: f64,
    /// Cost-based admission threshold: under load, queries whose
    /// planner-estimated cost exceeds this are shed with 429.
    /// `f64::INFINITY` (the default) disables the gate.
    pub admit_cost: f64,
    /// Engine configuration for the embedded [`MatchServer`].
    pub serve: ServeConfig,
}

impl Default for FrontDoorConfig {
    fn default() -> Self {
        let serve = ServeConfig::default();
        FrontDoorConfig {
            addr: "127.0.0.1:0".to_string(),
            http_threads: 4,
            pending_connections: 128,
            queue_depth: serve.threads * 4,
            tenant_qps: 0.0,
            admit_cost: f64::INFINITY,
            serve,
        }
    }
}

impl FrontDoorConfig {
    /// Defaults with `HGMATCH_LISTEN_ADDR`, `HGMATCH_QUEUE_DEPTH` and
    /// `HGMATCH_TENANT_QPS` applied on top (invalid values are ignored).
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Ok(addr) = std::env::var("HGMATCH_LISTEN_ADDR") {
            if !addr.is_empty() {
                config.addr = addr;
            }
        }
        if let Some(depth) = std::env::var("HGMATCH_QUEUE_DEPTH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            config.queue_depth = depth.max(1);
        }
        if let Some(qps) = std::env::var("HGMATCH_TENANT_QPS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
        {
            config.tenant_qps = qps.max(0.0);
        }
        config
    }
}

/// Lock-free front-door counters (engine counters live in
/// [`MatchServer`]).
#[derive(Debug, Default)]
struct DoorCounters {
    http_requests: AtomicU64,
    r200: AtomicU64,
    r400: AtomicU64,
    r404: AtomicU64,
    r405: AtomicU64,
    r413: AtomicU64,
    r429: AtomicU64,
    r503: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_quota: AtomicU64,
    shed_cost: AtomicU64,
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
}

impl DoorCounters {
    fn count_response(&self, status: u16) {
        match status {
            200 => &self.r200,
            400 => &self.r400,
            404 => &self.r404,
            405 => &self.r405,
            413 => &self.r413,
            429 => &self.r429,
            _ => &self.r503,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self, in_flight: u64) -> DoorSnapshot {
        DoorSnapshot {
            http_requests: self.http_requests.load(Ordering::Relaxed),
            responses: vec![
                (200, self.r200.load(Ordering::Relaxed)),
                (400, self.r400.load(Ordering::Relaxed)),
                (404, self.r404.load(Ordering::Relaxed)),
                (405, self.r405.load(Ordering::Relaxed)),
                (413, self.r413.load(Ordering::Relaxed)),
                (429, self.r429.load(Ordering::Relaxed)),
                (503, self.r503.load(Ordering::Relaxed)),
            ],
            shed_queue_full: self.shed_queue_full.load(Ordering::Relaxed),
            shed_quota: self.shed_quota.load(Ordering::Relaxed),
            shed_cost: self.shed_cost.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: self.connections_rejected.load(Ordering::Relaxed),
            in_flight,
        }
    }
}

/// State shared by the accept loop and the connection handlers.
struct DoorShared {
    engine: MatchServer,
    counters: DoorCounters,
    tenants: tenant::TenantGovernor,
    queue_depth: usize,
    admit_cost: f64,
    /// Match requests past admission, queued into the engine or
    /// executing.
    in_flight: AtomicU64,
    /// Connections accepted but not yet picked up by a handler.
    queued_connections: AtomicU64,
    shutting_down: AtomicBool,
}

impl DoorShared {
    /// Submission-queue occupancy: requests inside the engine plus
    /// connections still waiting for a handler (each of which may carry
    /// a request).
    fn current_load(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed) + self.queued_connections.load(Ordering::Relaxed)
    }
}

/// Decrements the in-flight count however the request ends.
struct InFlightGuard<'a>(&'a AtomicU64);

impl<'a> InFlightGuard<'a> {
    /// Admits one request against `shared.queue_depth`, or refuses.
    fn admit(shared: &'a DoorShared) -> Result<Self, ()> {
        let prior = shared.in_flight.fetch_add(1, Ordering::Relaxed);
        let load = prior + shared.queued_connections.load(Ordering::Relaxed);
        if load as usize >= shared.queue_depth {
            shared.in_flight.fetch_sub(1, Ordering::Relaxed);
            return Err(());
        }
        Ok(InFlightGuard(&shared.in_flight))
    }
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The running HTTP front door. Dropping it without
/// [`FrontDoor::shutdown`] leaves its threads running until process
/// exit; call `shutdown` for a graceful drain.
pub struct FrontDoor {
    inner: Arc<DoorShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    handler_threads: Vec<JoinHandle<()>>,
}

impl FrontDoor {
    /// Binds the listener, starts the engine pool and the accept/handler
    /// threads, and returns the running front door.
    pub fn bind(data: Arc<Hypergraph>, config: FrontDoorConfig) -> std::io::Result<FrontDoor> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let engine = MatchServer::new(data, config.serve.clone());
        let shared = Arc::new(DoorShared {
            engine,
            counters: DoorCounters::default(),
            tenants: tenant::TenantGovernor::new(config.tenant_qps),
            queue_depth: config.queue_depth.max(1),
            admit_cost: config.admit_cost,
            in_flight: AtomicU64::new(0),
            queued_connections: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });

        let (tx, rx) =
            std::sync::mpsc::sync_channel::<TcpStream>(config.pending_connections.max(1));
        let rx = Arc::new(parking_lot::Mutex::new(rx));

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("hgmatch-accept".to_string())
            .spawn(move || accept_loop(listener, tx, accept_shared))?;

        let mut handler_threads = Vec::with_capacity(config.http_threads.max(1));
        for i in 0..config.http_threads.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            handler_threads.push(
                std::thread::Builder::new()
                    .name(format!("hgmatch-http-{i}"))
                    .spawn(move || handler_loop(rx, shared))?,
            );
        }

        Ok(FrontDoor {
            inner: shared,
            local_addr,
            accept_thread: Some(accept_thread),
            handler_threads,
        })
    }

    /// The bound socket address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Engine counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.inner.engine.stats()
    }

    /// The current `/metrics` document, for out-of-band inspection.
    pub fn metrics_text(&self) -> String {
        render_metrics_text(&self.inner)
    }

    /// Graceful shutdown: stop accepting, drain queued connections
    /// (late match requests get 503), let in-flight queries finish, then
    /// stop the engine pool. Returns the final engine stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.inner.shutting_down.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The accept thread owned the only sender; its exit disconnects
        // the channel, so handlers drain what is queued and then stop.
        for t in self.handler_threads.drain(..) {
            let _ = t.join();
        }
        let shared = Arc::try_unwrap(self.inner)
            .unwrap_or_else(|_| panic!("front-door threads still hold state after join"));
        let stats = shared.engine.stats();
        shared.engine.shutdown();
        stats
    }
}

fn accept_loop(listener: TcpListener, tx: SyncSender<TcpStream>, shared: Arc<DoorShared>) {
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared
                    .counters
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                shared.queued_connections.fetch_add(1, Ordering::Relaxed);
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        shared.queued_connections.fetch_sub(1, Ordering::Relaxed);
                        reject_connection(stream, &shared);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Turns a connection away at the accept stage (handler backlog full).
fn reject_connection(mut stream: TcpStream, shared: &DoorShared) {
    // This runs on the single accept thread: a client that never reads
    // must not stall accepting, so bound the write.
    if stream.set_write_timeout(Some(http::WRITE_TIMEOUT)).is_err() {
        return;
    }
    shared
        .counters
        .connections_rejected
        .fetch_add(1, Ordering::Relaxed);
    shared
        .counters
        .shed_queue_full
        .fetch_add(1, Ordering::Relaxed);
    shared.counters.count_response(429);
    let resp =
        Response::error(429, "server overloaded: connection backlog full").with_retry_after(1);
    let _ = stream.write_all(&http::render_response(&resp, true));
}

fn handler_loop(rx: Arc<parking_lot::Mutex<Receiver<TcpStream>>>, shared: Arc<DoorShared>) {
    loop {
        let stream = {
            let guard = rx.lock();
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                shared.queued_connections.fetch_sub(1, Ordering::Relaxed);
                handle_connection(stream, &shared);
            }
            // Accept loop exited and the queue is drained: stop.
            Err(_) => return,
        }
    }
}

fn handle_connection(mut stream: TcpStream, shared: &DoorShared) {
    if stream.set_read_timeout(Some(http::READ_POLL)).is_err()
        || stream.set_write_timeout(Some(http::WRITE_TIMEOUT)).is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut carry = Vec::new();
    let stop = || shared.shutting_down.load(Ordering::SeqCst);
    loop {
        match http::read_request(&mut stream, &mut carry, &stop) {
            Ok(Some(req)) => {
                let resp = route(shared, &req);
                shared.counters.count_response(resp.status);
                let close = req.wants_close() || stop();
                if http::write_response(&mut stream, &resp, close).is_err() || close {
                    return;
                }
            }
            Ok(None) => return,
            Err(HttpError::TooLarge) => {
                let resp = Response::error(413, "request exceeds size limits");
                shared.counters.count_response(413);
                let _ = http::write_response(&mut stream, &resp, true);
                return;
            }
            Err(HttpError::Malformed(msg)) => {
                let resp = Response::error(400, msg);
                shared.counters.count_response(400);
                let _ = http::write_response(&mut stream, &resp, true);
                return;
            }
            Err(HttpError::Io(_)) => return,
        }
    }
}

fn route(shared: &DoorShared, req: &Request) -> Response {
    shared
        .counters
        .http_requests
        .fetch_add(1, Ordering::Relaxed);
    // Match on the path component alone: a query string (`/metrics?x=1`)
    // must not turn a known path into a 404.
    let path = req.path.split('?').next().unwrap_or("");
    match (req.method.as_str(), path) {
        ("GET", "/metrics") => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body: render_metrics_text(shared).into_bytes(),
            retry_after: None,
        },
        ("GET", "/healthz") => Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: b"ok\n".to_vec(),
            retry_after: None,
        },
        ("POST", "/match") => handle_match(shared, &req.body),
        (_, "/match" | "/metrics" | "/healthz") => {
            Response::error(405, "method not allowed for this path")
        }
        _ => Response::error(404, "unknown path"),
    }
}

fn render_metrics_text(shared: &DoorShared) -> String {
    let stats = shared.engine.stats();
    let workers: Vec<WorkerServeStats> = shared.engine.worker_stats();
    let door = shared.counters.snapshot(shared.current_load());
    let tenants = shared.tenants.snapshot();
    metrics::render(&stats, &workers, &door, &tenants)
}

/// A parsed and validated `/match` request body.
#[derive(Debug)]
struct MatchRequest {
    tenant: String,
    query: Hypergraph,
    options: QueryOptions,
}

impl MatchRequest {
    fn from_json(doc: &json::Json) -> Result<MatchRequest, String> {
        if !matches!(doc, json::Json::Obj(_)) {
            return Err("request body must be a JSON object".to_string());
        }
        let tenant = match doc.get("tenant") {
            None => DEFAULT_TENANT.to_string(),
            Some(v) => {
                let name = v
                    .as_str()
                    .ok_or_else(|| "field 'tenant' must be a string".to_string())?;
                if name.is_empty() || name.len() > MAX_TENANT_LEN {
                    return Err(format!(
                        "field 'tenant' must be 1..={MAX_TENANT_LEN} characters"
                    ));
                }
                name.to_string()
            }
        };

        let labels = doc
            .get("labels")
            .and_then(json::Json::as_arr)
            .ok_or_else(|| "field 'labels' must be an array of vertex labels".to_string())?;
        let edges = doc
            .get("edges")
            .and_then(json::Json::as_arr)
            .ok_or_else(|| "field 'edges' must be an array of vertex-id arrays".to_string())?;

        let mut builder = HypergraphBuilder::new();
        for (i, l) in labels.iter().enumerate() {
            let label = l
                .as_u64()
                .filter(|&v| v <= u32::MAX as u64)
                .ok_or_else(|| format!("labels[{i}] is not a valid label id"))?;
            builder.add_vertex(Label::new(label as u32));
        }
        for (i, edge) in edges.iter().enumerate() {
            let members = edge
                .as_arr()
                .ok_or_else(|| format!("edges[{i}] must be an array of vertex ids"))?;
            let mut vertices = Vec::with_capacity(members.len());
            for (j, m) in members.iter().enumerate() {
                let v = m
                    .as_u64()
                    .filter(|&v| (v as usize) < labels.len())
                    .ok_or_else(|| {
                        format!("edges[{i}][{j}] must be a vertex id below {}", labels.len())
                    })?;
                vertices.push(v as u32);
            }
            builder
                .add_edge(vertices)
                .map_err(|e| format!("edges[{i}]: {e}"))?;
        }
        let query = builder.build().map_err(|e| e.to_string())?;

        // The same shape gate the CLI applies to query files: empty and
        // over-long (> MAX_QUERY_EDGES hyperedges) queries are rejected
        // before they reach the planner.
        hgmatch_core::validate_query_shape(&query).map_err(|e| e.to_string())?;

        let collect = match doc.get("collect") {
            None => false,
            Some(v) => v
                .as_bool()
                .ok_or_else(|| "field 'collect' must be a boolean".to_string())?,
        };
        let max_results =
            match doc.get("max_results") {
                None => None,
                Some(v) => Some(v.as_u64().ok_or_else(|| {
                    "field 'max_results' must be a non-negative integer".to_string()
                })?),
            };
        let timeout = match doc.get("timeout_ms") {
            None => None,
            Some(v) => Some(Duration::from_millis(v.as_u64().ok_or_else(|| {
                "field 'timeout_ms' must be a non-negative integer".to_string()
            })?)),
        };
        let aggregate = match doc.get("aggregate") {
            None => None,
            Some(v) => Some(parse_aggregate(v)?),
        };

        Ok(MatchRequest {
            tenant,
            query,
            options: QueryOptions {
                timeout,
                max_results,
                collect,
                aggregate,
            },
        })
    }
}

/// Parses the `aggregate` request object into an [`AggregateMode`].
fn parse_aggregate(v: &json::Json) -> Result<AggregateMode, String> {
    let mode = v
        .get("mode")
        .and_then(json::Json::as_str)
        .ok_or_else(|| "field 'aggregate.mode' must be a string".to_string())?;
    match mode {
        "materialize" => Ok(AggregateMode::Materialize),
        "count_only" => Ok(AggregateMode::CountOnly),
        "top_k" => {
            let k = v
                .get("k")
                .and_then(json::Json::as_u64)
                .filter(|&k| k <= usize::MAX as u64)
                .ok_or_else(|| "field 'aggregate.k' must be a non-negative integer".to_string())?;
            let score = match v.get("score") {
                None => ScoreFn::EdgeIdSum,
                Some(s) => s.as_str().and_then(ScoreFn::parse).ok_or_else(|| {
                    "field 'aggregate.score' must be one of \
                         'edge_id_sum', 'min_edge', 'hash'"
                        .to_string()
                })?,
            };
            Ok(AggregateMode::TopK {
                k: k as usize,
                score,
            })
        }
        "sampled" => {
            let budget = v
                .get("budget")
                .and_then(json::Json::as_u64)
                .filter(|&b| b <= usize::MAX as u64)
                .ok_or_else(|| {
                    "field 'aggregate.budget' must be a non-negative integer".to_string()
                })?;
            let seed = match v.get("seed") {
                None => 0,
                Some(s) => s.as_u64_lossless().ok_or_else(|| {
                    "field 'aggregate.seed' must be a non-negative integer \
                     (or a decimal string past 2^53)"
                        .to_string()
                })?,
            };
            Ok(AggregateMode::Sampled {
                budget: budget as usize,
                seed,
            })
        }
        other => Err(format!(
            "unknown aggregate mode '{other}' (expected 'materialize', \
             'count_only', 'top_k' or 'sampled')"
        )),
    }
}

fn handle_match(shared: &DoorShared, body: &[u8]) -> Response {
    if shared.shutting_down.load(Ordering::SeqCst) {
        return Response::error(503, "server is shutting down");
    }
    let doc = match json::parse(body) {
        Ok(doc) => doc,
        Err(e) => return Response::error(400, &format!("invalid JSON: {e}")),
    };
    let req = match MatchRequest::from_json(&doc) {
        Ok(req) => req,
        Err(e) => return Response::error(400, &e),
    };

    // Gate 1: tenant quota.
    let now = Instant::now();
    if let Err(wait) = shared.tenants.try_admit(&req.tenant, now) {
        shared.counters.shed_quota.fetch_add(1, Ordering::Relaxed);
        return Response::error(429, &format!("tenant '{}' over quota", req.tenant))
            .with_retry_after((wait.ceil() as u32).max(1));
    }

    // Gate 2: submission-queue depth.
    let guard = match InFlightGuard::admit(shared) {
        Ok(guard) => guard,
        Err(()) => {
            shared
                .counters
                .shed_queue_full
                .fetch_add(1, Ordering::Relaxed);
            shared.tenants.record_shed(&req.tenant, now);
            return Response::error(429, "submission queue full").with_retry_after(1);
        }
    };

    // Gate 3: cost-based admission, only under load (queue more than
    // half full) so an idle server never rejects on estimates alone.
    if shared.admit_cost.is_finite() && shared.current_load() as usize * 2 > shared.queue_depth {
        match shared.engine.estimate_cost(&req.query) {
            Ok(cost) if cost > shared.admit_cost => {
                drop(guard);
                shared.counters.shed_cost.fetch_add(1, Ordering::Relaxed);
                shared.tenants.record_shed(&req.tenant, now);
                return Response::json(
                    429,
                    format!(
                        "{{\"error\":\"predicted-expensive query shed under load\",\"estimated_cost\":{cost:.1}}}"
                    ),
                )
                .with_retry_after(2);
            }
            Ok(_) => {}
            Err(e) => {
                drop(guard);
                return Response::error(400, &e.to_string());
            }
        }
    }

    let handle = match shared.engine.submit(&req.query, req.options) {
        Ok(handle) => handle,
        Err(e) => {
            drop(guard);
            return Response::error(400, &e.to_string());
        }
    };
    let outcome = handle.wait();
    drop(guard);
    Response::json(200, outcome_json(&outcome))
}

/// Serialises a [`QueryOutcome`] as the `/match` response body. The count
/// uses the split `u64` encoding ([`json::write_u64`]) so results past
/// 2^53 cross the wire losslessly.
fn outcome_json(outcome: &QueryOutcome) -> String {
    let mut out = String::with_capacity(160);
    out.push_str(&format!(
        "{{\"id\":{},\"status\":\"{}\",\"count\":",
        outcome.id, outcome.status,
    ));
    json::write_u64(&mut out, outcome.count);
    out.push_str(&format!(
        ",\"elapsed_us\":{},\"queue_us\":{},\"exec_us\":{},\"plan_cached\":{},\"data_epoch\":{},\"peak_memory_bytes\":{},\"materialized\":{}",
        outcome.elapsed.as_micros(),
        outcome.queue_wait.as_micros(),
        outcome.execution.as_micros(),
        outcome.plan_cached,
        outcome.data_epoch,
        outcome.peak_memory_bytes,
        outcome.metrics.materialized,
    ));
    out.push_str(",\"aggregate\":");
    write_aggregate_json(&mut out, &outcome.aggregate);
    if let Some(embeddings) = &outcome.embeddings {
        out.push_str(",\"embeddings\":[");
        for (i, emb) in embeddings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, edge) in emb.raw().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&edge.to_string());
            }
            out.push(']');
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Serialises the mode-specific [`AggregateSummary`] object.
fn write_aggregate_json(out: &mut String, summary: &AggregateSummary) {
    out.push_str(&format!("{{\"mode\":\"{}\"", summary.mode_name()));
    match summary {
        AggregateSummary::Materialized | AggregateSummary::Count => {}
        AggregateSummary::TopK { k, score, scores } => {
            out.push_str(&format!(
                ",\"k\":{k},\"score\":\"{}\",\"scores\":[",
                score.name()
            ));
            for (i, s) in scores.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::write_u64(out, *s);
            }
            out.push(']');
        }
        AggregateSummary::Sampled {
            budget,
            seed,
            sampled,
            fraction,
            ci95,
        } => {
            out.push_str(&format!(",\"budget\":{budget},\"seed\":"));
            json::write_u64(out, *seed);
            out.push_str(&format!(
                ",\"sampled\":{sampled},\"fraction\":{fraction},\"ci95\":{ci95}"
            ));
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Arc<Hypergraph> {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 0, 1, 0, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![2, 3, 4]).unwrap();
        Arc::new(b.build().unwrap())
    }

    #[test]
    fn match_request_parses_and_validates() {
        let doc = json::parse(
            br#"{"labels":[0,0,1],"edges":[[0,1,2]],"collect":true,"max_results":5,"timeout_ms":100}"#,
        )
        .unwrap();
        let req = MatchRequest::from_json(&doc).unwrap();
        assert_eq!(req.tenant, DEFAULT_TENANT);
        assert_eq!(req.query.num_edges(), 1);
        assert!(req.options.collect);
        assert_eq!(req.options.max_results, Some(5));
        assert_eq!(req.options.timeout, Some(Duration::from_millis(100)));

        // Shared shape validation: empty and over-long queries rejected.
        let empty = json::parse(br#"{"labels":[0],"edges":[]}"#).unwrap();
        let err = MatchRequest::from_json(&empty).unwrap_err();
        assert!(err.contains("no hyperedges"), "{err}");

        let labels: Vec<String> = (0..66).map(|_| "0".to_string()).collect();
        let edges: Vec<String> = (0..65).map(|i| format!("[{},{}]", i, i + 1)).collect();
        let doc = format!(
            "{{\"labels\":[{}],\"edges\":[{}]}}",
            labels.join(","),
            edges.join(",")
        );
        let err = MatchRequest::from_json(&json::parse(doc.as_bytes()).unwrap()).unwrap_err();
        assert!(err.contains("65"), "{err}");

        // Out-of-range vertex ids are a crisp 400, not a build panic.
        let bad = json::parse(br#"{"labels":[0],"edges":[[0,7]]}"#).unwrap();
        let err = MatchRequest::from_json(&bad).unwrap_err();
        assert!(err.contains("edges[0][1]"), "{err}");
    }

    #[test]
    fn outcome_json_is_valid_json() {
        let data = two_triangles();
        let engine = MatchServer::new(Arc::clone(&data), ServeConfig::default().with_threads(1));
        let mut q = HypergraphBuilder::new();
        for &l in &[0u32, 0, 1] {
            q.add_vertex(Label::new(l));
        }
        q.add_edge(vec![0, 1, 2]).unwrap();
        let query = q.build().unwrap();
        let outcome = engine.run(&query, QueryOptions::collect_all()).unwrap();
        let body = outcome_json(&outcome);
        let parsed = json::parse(body.as_bytes()).unwrap();
        assert_eq!(parsed.get("count").and_then(json::Json::as_u64), Some(2));
        assert_eq!(
            parsed.get("status").and_then(json::Json::as_str),
            Some("completed")
        );
        assert_eq!(
            parsed
                .get("embeddings")
                .and_then(json::Json::as_arr)
                .map(|a| a.len()),
            Some(2)
        );
        engine.shutdown();
    }

    #[test]
    fn in_flight_guard_enforces_queue_depth() {
        let shared = DoorShared {
            engine: MatchServer::new(two_triangles(), ServeConfig::default().with_threads(1)),
            counters: DoorCounters::default(),
            tenants: tenant::TenantGovernor::new(0.0),
            queue_depth: 2,
            admit_cost: f64::INFINITY,
            in_flight: AtomicU64::new(0),
            queued_connections: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        };
        let g1 = InFlightGuard::admit(&shared).unwrap();
        let _g2 = InFlightGuard::admit(&shared).unwrap();
        assert!(InFlightGuard::admit(&shared).is_err());
        drop(g1);
        let _g3 = InFlightGuard::admit(&shared).unwrap();
        // Queued connections count toward the load.
        shared.queued_connections.store(1, Ordering::Relaxed);
        assert!(InFlightGuard::admit(&shared).is_err());
    }
}
