//! End-to-end tests of the HTTP front door: real sockets, real engine.
//!
//! Covers the admission gates (quota, queue depth, cost), the error
//! paths shared with the CLI's query validation, keep-alive, graceful
//! drain, and a golden test pinning the `/metrics` text format.

use hgmatch_core::ServeConfig;
use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};
use hgmatch_server::{FrontDoor, FrontDoorConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Two triangles sharing a vertex: the crate's doc example data.
fn two_triangles() -> Arc<Hypergraph> {
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 0, 1, 0, 0] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![0, 1, 2]).unwrap();
    b.add_edge(vec![2, 3, 4]).unwrap();
    Arc::new(b.build().unwrap())
}

/// A dense single-label pair clique: every 2-subset of `n` vertices is
/// an edge, so multi-edge path queries have a huge search space — used
/// to hold a worker busy for a controlled window (with a timeout).
fn clique(n: usize) -> Arc<Hypergraph> {
    let mut b = HypergraphBuilder::new();
    for _ in 0..n {
        b.add_vertex(Label::new(0));
    }
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            b.add_edge(vec![i, j]).unwrap();
        }
    }
    Arc::new(b.build().unwrap())
}

/// The doc-example query: one {A, A, B} hyperedge (2 matches in
/// `two_triangles`).
const TRIANGLE_QUERY: &str = r#"{"labels":[0,0,1],"edges":[[0,1,2]]}"#;

/// A 5-edge path over the clique's single label — combinatorial search
/// space, always stopped by its `timeout_ms`.
const HEAVY_QUERY: &str = concat!(
    r#"{"labels":[0,0,0,0,0,0],"edges":[[0,1],[1,2],[2,3],[3,4],[4,5]],"#,
    r#""timeout_ms":400}"#
);

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn read_reply(stream: &mut TcpStream) -> Reply {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "connection closed before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .unwrap()
        .split(' ')
        .nth(1)
        .unwrap()
        .parse::<u16>()
        .unwrap();
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    let len = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse::<usize>().unwrap())
        .unwrap_or(0);
    let body_start = head_end + 4;
    while buf.len() < body_start + len {
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = String::from_utf8(buf[body_start..body_start + len].to_vec()).unwrap();
    Reply {
        status,
        headers,
        body,
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).unwrap();
    read_reply(&mut stream)
}

fn field_u64(body: &str, field: &str) -> Option<u64> {
    let marker = format!("\"{field}\":");
    let rest = &body[body.find(&marker)? + marker.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[test]
fn match_end_to_end_with_plan_cache() {
    let door = FrontDoor::bind(
        two_triangles(),
        FrontDoorConfig {
            serve: ServeConfig::default().with_threads(2),
            ..FrontDoorConfig::default()
        },
    )
    .unwrap();
    let addr = door.local_addr();

    let r1 = request(addr, "POST", "/match", TRIANGLE_QUERY);
    assert_eq!(r1.status, 200, "{}", r1.body);
    assert_eq!(field_u64(&r1.body, "count"), Some(2));
    assert!(r1.body.contains("\"status\":\"completed\""), "{}", r1.body);
    assert!(r1.body.contains("\"plan_cached\":false"), "{}", r1.body);

    // Same shape again: served from the plan cache.
    let r2 = request(addr, "POST", "/match", TRIANGLE_QUERY);
    assert_eq!(r2.status, 200);
    assert!(r2.body.contains("\"plan_cached\":true"), "{}", r2.body);

    // Collect mode returns the matched data-edge tuples.
    let r3 = request(
        addr,
        "POST",
        "/match",
        r#"{"labels":[0,0,1],"edges":[[0,1,2]],"collect":true}"#,
    );
    assert_eq!(r3.status, 200);
    assert!(r3.body.contains("\"embeddings\":[[0],[1]]"), "{}", r3.body);

    // The latency split is present and consistent: elapsed = queue + exec.
    let elapsed = field_u64(&r1.body, "elapsed_us").unwrap();
    let queue = field_u64(&r1.body, "queue_us").unwrap();
    let exec = field_u64(&r1.body, "exec_us").unwrap();
    // Exact in nanoseconds; each microsecond field truncates separately.
    assert!(
        elapsed >= queue + exec && elapsed <= queue + exec + 1,
        "elapsed={elapsed} queue={queue} exec={exec}"
    );

    let stats = door.shutdown();
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.plan_cache_hits, 2);
}

#[test]
fn aggregate_modes_end_to_end() {
    let door = FrontDoor::bind(
        two_triangles(),
        FrontDoorConfig {
            serve: ServeConfig::default().with_threads(2),
            ..FrontDoorConfig::default()
        },
    )
    .unwrap();
    let addr = door.local_addr();

    // count_only: exact count, no embeddings array, zero materialized.
    let r = request(
        addr,
        "POST",
        "/match",
        r#"{"labels":[0,0,1],"edges":[[0,1,2]],"aggregate":{"mode":"count_only"}}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(field_u64(&r.body, "count"), Some(2));
    assert_eq!(field_u64(&r.body, "materialized"), Some(0));
    assert!(!r.body.contains("\"embeddings\""), "{}", r.body);
    assert!(
        r.body.contains("\"aggregate\":{\"mode\":\"count_only\"}"),
        "{}",
        r.body
    );

    // top_k: count stays exact, only k embeddings, scores attached.
    let r = request(
        addr,
        "POST",
        "/match",
        r#"{"labels":[0,0,1],"edges":[[0,1,2]],"aggregate":{"mode":"top_k","k":1,"score":"edge_id_sum"}}"#,
    );
    assert_eq!(r.status, 200, "{}", r.body);
    assert_eq!(field_u64(&r.body, "count"), Some(2));
    // The two embeddings are data edges [0] and [1]; top-1 by id sum = [1].
    assert!(r.body.contains("\"embeddings\":[[1]]"), "{}", r.body);
    assert!(
        r.body
            .contains("\"mode\":\"top_k\",\"k\":1,\"score\":\"edge_id_sum\",\"scores\":[1]"),
        "{}",
        r.body
    );

    // sampled: seed-reproducible subset plus confidence metadata.
    let body = r#"{"labels":[0,0,1],"edges":[[0,1,2]],"aggregate":{"mode":"sampled","budget":1,"seed":42}}"#;
    let r1 = request(addr, "POST", "/match", body);
    let r2 = request(addr, "POST", "/match", body);
    assert_eq!(r1.status, 200, "{}", r1.body);
    assert_eq!(field_u64(&r1.body, "count"), Some(2));
    assert!(
        r1.body
            .contains("\"mode\":\"sampled\",\"budget\":1,\"seed\":42,\"sampled\":1"),
        "{}",
        r1.body
    );
    let sample_of = |b: &str| {
        let start = b.find("\"embeddings\":").unwrap();
        b[start..b[start..].find(']').unwrap() + start + 1].to_string()
    };
    assert_eq!(
        sample_of(&r1.body),
        sample_of(&r2.body),
        "same seed must reproduce the same sample"
    );

    // Unknown modes and malformed parameters are client errors.
    let r = request(
        addr,
        "POST",
        "/match",
        r#"{"labels":[0,0,1],"edges":[[0,1,2]],"aggregate":{"mode":"median"}}"#,
    );
    assert_eq!(r.status, 400);
    assert!(r.body.contains("unknown aggregate mode"), "{}", r.body);
    let r = request(
        addr,
        "POST",
        "/match",
        r#"{"labels":[0,0,1],"edges":[[0,1,2]],"aggregate":{"mode":"top_k"}}"#,
    );
    assert_eq!(r.status, 400);
    assert!(r.body.contains("aggregate.k"), "{}", r.body);

    // The aggregate metric families report per-mode query counts.
    let m = request(addr, "GET", "/metrics", "");
    assert!(
        m.body
            .contains("hgmatch_queries_aggregate_total{mode=\"count_only\"} 1"),
        "{}",
        m.body
    );
    assert!(
        m.body
            .contains("hgmatch_queries_aggregate_total{mode=\"top_k\"} 1"),
        "{}",
        m.body
    );
    assert!(
        m.body
            .contains("hgmatch_queries_aggregate_total{mode=\"sampled\"} 2"),
        "{}",
        m.body
    );
    assert!(
        m.body.contains("hgmatch_results_found_total 8"),
        "{}",
        m.body
    );
    // count_only materialised nothing; top_k and the two sampled runs
    // each materialised both embeddings to aggregate over them.
    assert!(
        m.body.contains("hgmatch_results_materialized_total 6"),
        "{}",
        m.body
    );

    let stats = door.shutdown();
    assert_eq!(stats.queries_count_only, 1);
    assert_eq!(stats.queries_top_k, 1);
    assert_eq!(stats.queries_sampled, 2);
    assert_eq!(stats.results_found, 8);
    assert_eq!(stats.results_materialized, 6);
}

#[test]
fn validation_errors_are_client_errors() {
    let door = FrontDoor::bind(two_triangles(), FrontDoorConfig::default()).unwrap();
    let addr = door.local_addr();

    let r = request(addr, "POST", "/match", "this is not json");
    assert_eq!(r.status, 400);
    assert!(r.body.contains("invalid JSON"), "{}", r.body);

    // Shared shape validation: empty query.
    let r = request(addr, "POST", "/match", r#"{"labels":[0],"edges":[]}"#);
    assert_eq!(r.status, 400);
    assert!(r.body.contains("no hyperedges"), "{}", r.body);

    // Shared shape validation: over MAX_QUERY_EDGES.
    let labels: Vec<String> = (0..66).map(|_| "0".to_string()).collect();
    let edges: Vec<String> = (0..65).map(|i| format!("[{},{}]", i, i + 1)).collect();
    let long = format!(
        "{{\"labels\":[{}],\"edges\":[{}]}}",
        labels.join(","),
        edges.join(",")
    );
    let r = request(addr, "POST", "/match", &long);
    assert_eq!(r.status, 400);
    assert!(r.body.contains("65"), "{}", r.body);

    // Vertex id out of range.
    let r = request(addr, "POST", "/match", r#"{"labels":[0],"edges":[[0,9]]}"#);
    assert_eq!(r.status, 400);
    assert!(r.body.contains("edges[0][1]"), "{}", r.body);

    // Routing errors.
    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    assert_eq!(request(addr, "GET", "/match", "").status, 405);
    assert_eq!(request(addr, "POST", "/metrics", "").status, 405);
    // Unlisted methods on known paths are 405, not 404.
    assert_eq!(request(addr, "PATCH", "/match", "").status, 405);
    assert_eq!(request(addr, "OPTIONS", "/healthz", "").status, 405);
    // A query string does not hide a known path.
    assert_eq!(request(addr, "GET", "/metrics?x=1", "").status, 200);
    assert_eq!(request(addr, "GET", "/healthz?probe=lb", "").status, 200);
    // Chunked framing is rejected, not silently desynced.
    let mut chunked = TcpStream::connect(addr).unwrap();
    chunked
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    chunked
        .write_all(b"POST /match HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n")
        .unwrap();
    let r = read_reply(&mut chunked);
    assert_eq!(r.status, 400);
    assert!(r.body.contains("Transfer-Encoding"), "{}", r.body);

    let stats = door.shutdown();
    assert_eq!(
        stats.admitted, 0,
        "no malformed request may reach the engine"
    );
}

#[test]
fn tenant_quota_returns_429_with_retry_after() {
    let door = FrontDoor::bind(
        two_triangles(),
        FrontDoorConfig {
            tenant_qps: 0.001, // burst 1, effectively no refill during the test
            ..FrontDoorConfig::default()
        },
    )
    .unwrap();
    let addr = door.local_addr();

    let body_a = r#"{"tenant":"a","labels":[0,0,1],"edges":[[0,1,2]]}"#;
    let r1 = request(addr, "POST", "/match", body_a);
    assert_eq!(r1.status, 200, "{}", r1.body);
    let r2 = request(addr, "POST", "/match", body_a);
    assert_eq!(r2.status, 429);
    assert!(r2.body.contains("over quota"), "{}", r2.body);
    assert!(r2.header("Retry-After").is_some());

    // Quotas are per tenant: a different tenant still gets through.
    let body_b = r#"{"tenant":"b","labels":[0,0,1],"edges":[[0,1,2]]}"#;
    assert_eq!(request(addr, "POST", "/match", body_b).status, 200);

    let metrics = request(addr, "GET", "/metrics", "").body;
    assert!(
        metrics.contains("hgmatch_shed_total{reason=\"quota\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("hgmatch_tenant_admitted_total{tenant=\"a\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("hgmatch_tenant_shed_total{tenant=\"a\"} 1"),
        "{metrics}"
    );
    door.shutdown();
}

#[test]
fn full_queue_sheds_with_429() {
    let door = FrontDoor::bind(
        clique(40),
        FrontDoorConfig {
            queue_depth: 1,
            http_threads: 4,
            serve: ServeConfig::default().with_threads(1),
            ..FrontDoorConfig::default()
        },
    )
    .unwrap();
    let addr = door.local_addr();

    // Occupy the single queue slot with a query that runs until its
    // 400 ms timeout.
    let holder = std::thread::spawn(move || request(addr, "POST", "/match", HEAVY_QUERY));
    std::thread::sleep(Duration::from_millis(150));

    // While it runs, further requests are shed, not queued.
    let shed = request(addr, "POST", "/match", TRIANGLE_QUERY);
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert!(shed.body.contains("submission queue full"), "{}", shed.body);
    assert_eq!(shed.header("Retry-After"), Some("1"));

    let held = holder.join().unwrap();
    assert_eq!(held.status, 200, "{}", held.body);
    assert!(
        held.body.contains("\"status\":\"timed-out\""),
        "{}",
        held.body
    );

    let metrics = request(addr, "GET", "/metrics", "").body;
    assert!(
        metrics.contains("hgmatch_shed_total{reason=\"queue_full\"} 1"),
        "{metrics}"
    );
    door.shutdown();
}

#[test]
fn cost_admission_sheds_expensive_queries_under_load() {
    let door = FrontDoor::bind(
        clique(40),
        FrontDoorConfig {
            queue_depth: 3,
            http_threads: 4,
            admit_cost: 0.5, // every clique query estimates higher
            serve: ServeConfig::default().with_threads(1),
            ..FrontDoorConfig::default()
        },
    )
    .unwrap();
    let addr = door.local_addr();

    // Load the server: one running query (load 1 → gate still closed:
    // it was admitted while the server was idle).
    let holder = std::thread::spawn(move || request(addr, "POST", "/match", HEAVY_QUERY));
    std::thread::sleep(Duration::from_millis(150));

    // Second expensive query: load 2, 2*2 > 3 → the cost gate sheds it.
    let shed = request(addr, "POST", "/match", HEAVY_QUERY);
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert!(shed.body.contains("predicted-expensive"), "{}", shed.body);
    assert!(shed.body.contains("estimated_cost"), "{}", shed.body);
    assert_eq!(shed.header("Retry-After"), Some("2"));

    assert_eq!(holder.join().unwrap().status, 200);
    let metrics = request(addr, "GET", "/metrics", "").body;
    assert!(
        metrics.contains("hgmatch_shed_total{reason=\"cost\"} 1"),
        "{metrics}"
    );
    door.shutdown();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let door = FrontDoor::bind(two_triangles(), FrontDoorConfig::default()).unwrap();
    let mut stream = TcpStream::connect(door.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    for i in 0..3 {
        let req = format!(
            "POST /match HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{TRIANGLE_QUERY}",
            TRIANGLE_QUERY.len()
        );
        stream.write_all(req.as_bytes()).unwrap();
        let reply = read_reply(&mut stream);
        assert_eq!(reply.status, 200, "request {i}: {}", reply.body);
        assert_eq!(reply.header("Connection"), Some("keep-alive"));
    }
    // One connection, three engine queries.
    let stats = door.shutdown();
    assert_eq!(stats.admitted, 3);
}

#[test]
fn http10_client_gets_connection_close() {
    let door = FrontDoor::bind(two_triangles(), FrontDoorConfig::default()).unwrap();
    let mut stream = TcpStream::connect(door.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nHost: t\r\n\r\n")
        .unwrap();
    let reply = read_reply(&mut stream);
    assert_eq!(reply.status, 200);
    // HTTP/1.0 without Connection: keep-alive defaults to close — the
    // server must say so and actually close, not hold the socket open.
    assert_eq!(reply.header("Connection"), Some("close"));
    let mut buf = [0u8; 1];
    assert!(matches!(stream.read(&mut buf), Ok(0) | Err(_)));
    door.shutdown();
}

#[test]
fn stalled_clients_do_not_wedge_shutdown() {
    let door = FrontDoor::bind(
        two_triangles(),
        FrontDoorConfig {
            http_threads: 2,
            ..FrontDoorConfig::default()
        },
    )
    .unwrap();
    let addr = door.local_addr();

    // Saturate every handler thread with a connection stalled
    // mid-request: one mid-headers, one with a declared body that never
    // arrives. Keep the sockets open across shutdown.
    let mut s1 = TcpStream::connect(addr).unwrap();
    s1.write_all(b"POST /match HTTP/1.1\r\nContent-Le").unwrap();
    let mut s2 = TcpStream::connect(addr).unwrap();
    s2.write_all(b"POST /match HTTP/1.1\r\nHost: t\r\nContent-Length: 64\r\n\r\nstall")
        .unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Shutdown must drain despite both handlers being mid-read: the
    // stop flag is checked on every poll iteration, not only while a
    // connection is idle.
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(door.shutdown());
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(5))
        .expect("shutdown wedged on stalled clients");
    assert_eq!(stats.admitted, 0);
    drop((s1, s2));
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let door = FrontDoor::bind(
        clique(40),
        FrontDoorConfig {
            serve: ServeConfig::default().with_threads(1),
            ..FrontDoorConfig::default()
        },
    )
    .unwrap();
    let addr = door.local_addr();

    // A query that will still be running when shutdown starts.
    let in_flight = std::thread::spawn(move || request(addr, "POST", "/match", HEAVY_QUERY));
    std::thread::sleep(Duration::from_millis(150));

    let stats = door.shutdown();

    // The in-flight query was answered, not dropped.
    let reply = in_flight.join().unwrap();
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(
        reply.body.contains("\"status\":\"timed-out\""),
        "{}",
        reply.body
    );
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.active, 0, "shutdown returned with queries active");

    // The listener is gone.
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Some platforms accept briefly; a request must at least fail.
            let mut s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_millis(500)))
                .unwrap();
            s.write_all(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
            let mut buf = [0u8; 1];
            matches!(s.read(&mut buf), Ok(0) | Err(_))
        }
    );
}

#[test]
fn metrics_format_golden() {
    // Format-stability contract: a fresh 2-worker server must render
    // exactly this document (one deterministic request: this scrape).
    let door = FrontDoor::bind(
        two_triangles(),
        FrontDoorConfig {
            http_threads: 1,
            serve: ServeConfig::default().with_threads(2),
            ..FrontDoorConfig::default()
        },
    )
    .unwrap();
    let reply = request(door.local_addr(), "GET", "/metrics", "");
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("Content-Type"),
        Some("text/plain; version=0.0.4")
    );
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(
            concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_metrics.txt"),
            &reply.body,
        )
        .unwrap();
    }
    let expected = include_str!("golden_metrics.txt");
    assert_eq!(
        reply.body, expected,
        "metrics format drifted; update tests/golden_metrics.txt deliberately"
    );
    door.shutdown();
}
