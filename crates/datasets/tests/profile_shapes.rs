//! Shape checks for the mid-size dataset profiles (the small ones are
//! checked in unit tests): each synthetic analogue must land near its
//! paper row of Table II on the axes the matcher observes.

use hgmatch_datasets::{all_profiles, profile_by_name};

#[test]
fn wt_profile_shape() {
    let h = profile_by_name("WT").unwrap().generate();
    let stats = h.stats();
    assert_eq!(stats.num_vertices, 44_430);
    assert!(stats.num_edges > 30_000);
    assert!(stats.num_labels <= 11);
    // Paper WT: a = 6.6, amax = 25.
    assert!(
        (4.0..9.0).contains(&stats.avg_arity),
        "avg arity {}",
        stats.avg_arity
    );
    assert!(stats.max_arity <= 25);
}

#[test]
fn sb_profile_has_hubs() {
    // Senate bills: 294 sponsors, 20k bills — extreme degree skew.
    let h = profile_by_name("SB").unwrap().generate();
    let stats = h.stats();
    assert_eq!(stats.num_vertices, 294);
    assert!(stats.max_degree > 1_000, "hub degree {}", stats.max_degree);
    assert!(stats.num_labels <= 2);
}

#[test]
fn ar_profile_is_largest() {
    let profiles = all_profiles();
    let ar = profiles.iter().find(|p| p.name == "AR-S").unwrap();
    let h = ar.generate();
    let max_edges = profiles.iter().map(|p| p.config.num_edges).max().unwrap();
    assert_eq!(
        ar.config.num_edges, max_edges,
        "AR is the edge-count maximum, as in the paper"
    );
    assert!(h.num_edges() > 50_000);
}

#[test]
fn scales_recorded_consistently() {
    for p in all_profiles() {
        assert!(
            p.scale > 0.0 && p.scale <= 1.0,
            "{}: scale {}",
            p.name,
            p.scale
        );
        let suffixed = p.name.ends_with("-S");
        assert_eq!(
            p.scale < 1.0,
            suffixed,
            "{}: the -S suffix must mark exactly the scaled profiles",
            p.name
        );
    }
}

#[test]
fn profiles_produce_multiple_partitions() {
    // Signature partitioning is the core storage idea; every profile must
    // exercise it with more than a handful of partitions.
    for name in ["CH", "CP", "WT"] {
        let h = profile_by_name(name).unwrap().generate();
        assert!(
            h.partitions().len() > 3,
            "{name}: only {} partitions",
            h.partitions().len()
        );
    }
}
