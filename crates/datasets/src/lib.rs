//! # hgmatch-datasets
//!
//! Workload substrate for the HGMatch reproduction: synthetic hypergraph
//! generators, per-dataset profiles mirroring the paper's Table II, the
//! random-walk query sampler of §VII-A (Table III), and the JF17K-like
//! knowledge-base generator for the §VII-D case study.
//!
//! The paper evaluates on ten real hypergraphs from Benson's collection,
//! which are not available offline. The generators here reproduce the axes
//! those datasets exercise — label-alphabet size, arity distribution,
//! power-law degree skew, vertex/hyperedge ratio — at laptop scale, because
//! those are the only properties the matching algorithms observe (see
//! DESIGN.md §3 for the substitution argument).

pub mod generator;
pub mod knowledge_base;
pub mod profiles;
pub mod query_gen;
pub mod testgen;
pub mod update_stream;

pub use generator::{generate, ArityDistribution, GeneratorConfig};
pub use knowledge_base::{KnowledgeBase, KnowledgeBaseConfig};
pub use profiles::{all_profiles, profile_by_name, DatasetProfile};
pub use query_gen::{sample_query, standard_settings, QuerySetting};
pub use update_stream::{generate_update_stream, UpdateStreamConfig};
