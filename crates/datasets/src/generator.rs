//! Parametric random hypergraph generation.
//!
//! The generator reproduces the structural axes the paper's real datasets
//! vary over:
//!
//! * **alphabet size** `|Σ|` with a Zipf-like label skew (real label
//!   distributions are heavily skewed — e.g. Walmart departments);
//! * **arity distribution** (uniform, geometric-tailed, or fixed) with a cap
//!   `a_max`;
//! * **degree skew** — vertices are sampled with Zipf weights, producing the
//!   power-law vertex degrees the paper's load-balancing section leans on
//!   (§VI-C cites the power-law nature of real graphs).
//!
//! Generation is fully deterministic given the seed.

use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Arity (hyperedge size) distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArityDistribution {
    /// Uniform over `[min, max]`.
    Uniform {
        /// Smallest arity.
        min: u32,
        /// Largest arity.
        max: u32,
    },
    /// `min` plus a geometric tail with the given success probability,
    /// truncated at `max` — models datasets with small typical hyperedges
    /// and a long tail (e.g. Trivago clicks, Walmart trips).
    Geometric {
        /// Smallest arity.
        min: u32,
        /// Geometric success probability in `(0, 1]`; the mean arity is
        /// `min + (1 - p) / p`.
        p: f64,
        /// Truncation point.
        max: u32,
    },
    /// Every hyperedge has the same arity (e.g. fixed-schema facts).
    Fixed(u32),
}

impl ArityDistribution {
    fn sample<R: RngExt>(&self, rng: &mut R) -> u32 {
        match *self {
            Self::Uniform { min, max } => rng.random_range(min..=max.max(min)),
            Self::Geometric { min, p, max } => {
                let mut a = min;
                while a < max && rng.random::<f64>() > p {
                    a += 1;
                }
                a
            }
            Self::Fixed(a) => a,
        }
    }

    /// Largest arity this distribution can produce.
    pub fn max_arity(&self) -> u32 {
        match *self {
            Self::Uniform { max, .. } | Self::Geometric { max, .. } => max,
            Self::Fixed(a) => a,
        }
    }
}

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Target number of hyperedges (the result can be slightly lower when
    /// duplicate hyperedges are drawn and dropped).
    pub num_edges: usize,
    /// Label alphabet size `|Σ|`.
    pub num_labels: u32,
    /// Zipf exponent for the label distribution (0 = uniform labels).
    pub label_skew: f64,
    /// Arity distribution.
    pub arity: ArityDistribution,
    /// Zipf exponent for vertex popularity (0 = uniform; ≈1 gives the
    /// power-law degree skew of real hypergraphs).
    pub degree_skew: f64,
    /// RNG seed — generation is deterministic per seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_vertices: 1_000,
            num_edges: 5_000,
            num_labels: 8,
            label_skew: 0.5,
            arity: ArityDistribution::Geometric {
                min: 2,
                p: 0.45,
                max: 12,
            },
            degree_skew: 0.8,
            seed: 42,
        }
    }
}

/// A discrete sampler over `0..n` with Zipf-like weights `1 / (i+1)^s`,
/// implemented by inversion over the cumulative table.
struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    fn sample<R: RngExt>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty sampler");
        let x = rng.random::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.cumulative.len() - 1)
    }
}

/// Generates a hypergraph per `config`. Duplicate hyperedges (same vertex
/// set) drawn by the sampler are dropped, mirroring the paper's dataset
/// preprocessing, so the edge count can undershoot slightly on dense
/// configurations.
pub fn generate(config: &GeneratorConfig) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = HypergraphBuilder::new();

    // Labels: permuted Zipf assignment so label ids carry no positional bias.
    let label_sampler = ZipfSampler::new(config.num_labels.max(1) as usize, config.label_skew);
    for _ in 0..config.num_vertices {
        let l = label_sampler.sample(&mut rng) as u32;
        builder.add_vertex(Label::new(l));
    }

    let vertex_sampler = ZipfSampler::new(config.num_vertices.max(1), config.degree_skew);
    // Vertex popularity should not correlate with vertex id; shuffle the
    // identity of "popular" ranks.
    let mut identity: Vec<u32> = (0..config.num_vertices as u32).collect();
    for i in (1..identity.len()).rev() {
        let j = rng.random_range(0..=i);
        identity.swap(i, j);
    }

    let mut edge = Vec::new();
    let mut attempts = 0usize;
    let mut produced = 0usize;
    let max_attempts = config.num_edges.saturating_mul(20).max(1024);
    while produced < config.num_edges && attempts < max_attempts {
        attempts += 1;
        let arity = config
            .arity
            .sample(&mut rng)
            .min(config.num_vertices as u32)
            .max(1) as usize;
        edge.clear();
        // Rejection-sample distinct member vertices.
        let mut tries = 0;
        while edge.len() < arity && tries < arity * 30 {
            tries += 1;
            let v = identity[vertex_sampler.sample(&mut rng)];
            if !edge.contains(&v) {
                edge.push(v);
            }
        }
        if edge.is_empty() {
            continue;
        }
        if builder
            .add_edge(edge.clone())
            .expect("generated edges reference valid vertices")
            .is_some()
        {
            produced += 1;
        }
    }

    builder
        .build()
        .expect("generator produces structurally valid hypergraphs")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let config = GeneratorConfig {
            num_vertices: 200,
            num_edges: 400,
            ..Default::default()
        };
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.labels(), b.labels());
        for i in 0..a.num_edges() {
            assert_eq!(
                a.edge_vertices(hgmatch_hypergraph::EdgeId::from_index(i)),
                b.edge_vertices(hgmatch_hypergraph::EdgeId::from_index(i))
            );
        }
        let c = generate(&GeneratorConfig { seed: 7, ..config });
        // Different seed ⇒ (overwhelmingly likely) different graph.
        let differs = (0..a.num_edges().min(c.num_edges())).any(|i| {
            a.edge_vertices(hgmatch_hypergraph::EdgeId::from_index(i))
                != c.edge_vertices(hgmatch_hypergraph::EdgeId::from_index(i))
        });
        assert!(differs || a.num_edges() != c.num_edges());
    }

    #[test]
    fn respects_basic_shape() {
        let config = GeneratorConfig {
            num_vertices: 500,
            num_edges: 1000,
            num_labels: 5,
            arity: ArityDistribution::Uniform { min: 2, max: 6 },
            ..Default::default()
        };
        let h = generate(&config);
        assert_eq!(h.num_vertices(), 500);
        assert!(
            h.num_edges() > 900,
            "dup-drop should lose few edges, got {}",
            h.num_edges()
        );
        assert!(h.max_arity() <= 6);
        assert!(h.stats().num_labels <= 5);
        for (_, vs) in h.iter_edges() {
            assert!(vs.len() >= 2 && vs.len() <= 6);
        }
    }

    #[test]
    fn fixed_arity() {
        let config = GeneratorConfig {
            num_vertices: 100,
            num_edges: 50,
            arity: ArityDistribution::Fixed(3),
            ..Default::default()
        };
        let h = generate(&config);
        for (_, vs) in h.iter_edges() {
            assert_eq!(vs.len(), 3);
        }
    }

    #[test]
    fn degree_skew_creates_hubs() {
        let skewed = generate(&GeneratorConfig {
            num_vertices: 300,
            num_edges: 2000,
            degree_skew: 1.2,
            ..Default::default()
        });
        let uniform = generate(&GeneratorConfig {
            num_vertices: 300,
            num_edges: 2000,
            degree_skew: 0.0,
            ..Default::default()
        });
        assert!(
            skewed.stats().max_degree > uniform.stats().max_degree,
            "skewed {} vs uniform {}",
            skewed.stats().max_degree,
            uniform.stats().max_degree
        );
    }

    #[test]
    fn geometric_arity_mean_is_plausible() {
        let h = generate(&GeneratorConfig {
            num_vertices: 2000,
            num_edges: 3000,
            arity: ArityDistribution::Geometric {
                min: 2,
                p: 0.5,
                max: 20,
            },
            ..Default::default()
        });
        let avg = h.average_arity();
        // Mean ≈ 2 + (1-p)/p = 3; allow generous slack for truncation/dedup.
        assert!((2.0..5.0).contains(&avg), "avg arity {avg}");
    }

    #[test]
    fn tiny_configs_do_not_panic() {
        let h = generate(&GeneratorConfig {
            num_vertices: 1,
            num_edges: 3,
            num_labels: 1,
            arity: ArityDistribution::Uniform { min: 1, max: 4 },
            ..Default::default()
        });
        assert!(
            h.num_edges() <= 1,
            "only one distinct edge exists over one vertex"
        );
    }

    #[test]
    fn zipf_sampler_is_monotone_skewed() {
        let sampler = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50]);
        assert!(counts[0] > counts[99]);
    }
}
