//! Random-walk query sampling (paper §VII-A, Table III).
//!
//! Queries are sampled as connected sub-hypergraphs of the data hypergraph
//! by a random walk over adjacent hyperedges, so every sampled query has at
//! least one embedding by construction. A query setting fixes the number of
//! hyperedges `|E|` and a vertex-count window `[|V|min, |V|max]`; the
//! standard settings q2/q3/q4/q6 are those of Table III.

use hgmatch_hypergraph::{EdgeId, Hypergraph, HypergraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One row of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySetting {
    /// Setting name (`q2`, `q3`, …).
    pub name: &'static str,
    /// Number of query hyperedges.
    pub num_edges: usize,
    /// Minimum total query vertices.
    pub min_vertices: usize,
    /// Maximum total query vertices.
    pub max_vertices: usize,
}

/// The paper's four standard query settings (Table III).
pub fn standard_settings() -> [QuerySetting; 4] {
    [
        QuerySetting {
            name: "q2",
            num_edges: 2,
            min_vertices: 5,
            max_vertices: 15,
        },
        QuerySetting {
            name: "q3",
            num_edges: 3,
            min_vertices: 10,
            max_vertices: 20,
        },
        QuerySetting {
            name: "q4",
            num_edges: 4,
            min_vertices: 10,
            max_vertices: 30,
        },
        QuerySetting {
            name: "q6",
            num_edges: 6,
            min_vertices: 15,
            max_vertices: 35,
        },
    ]
}

/// Attempts per call before relaxing the vertex-count window.
const STRICT_ATTEMPTS: usize = 200;
/// Attempts after relaxation before giving up.
const RELAXED_ATTEMPTS: usize = 400;

/// Samples a connected query sub-hypergraph with `setting.num_edges`
/// hyperedges whose vertex count falls in the setting's window.
///
/// Datasets whose arities cannot reach the window (e.g. contact networks
/// with `a_max = 5` rarely reach 15 vertices in 2 edges) relax the window
/// after `STRICT_ATTEMPTS` failures, keeping only connectivity and the
/// edge count — the paper applies one global window to all datasets, which
/// only its large-arity datasets can meet exactly.
///
/// Returns `None` when the data hypergraph cannot yield a connected
/// sub-hypergraph of the requested size (e.g. fewer edges than requested).
pub fn sample_query(data: &Hypergraph, setting: &QuerySetting, seed: u64) -> Option<Hypergraph> {
    if data.num_edges() < setting.num_edges {
        return None;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for attempt in 0..STRICT_ATTEMPTS + RELAXED_ATTEMPTS {
        let relaxed = attempt >= STRICT_ATTEMPTS;
        if let Some(edges) = walk(data, setting.num_edges, &mut rng) {
            let count = distinct_vertices(data, &edges);
            if relaxed || (setting.min_vertices..=setting.max_vertices).contains(&count) {
                return Some(extract(data, &edges));
            }
        }
    }
    None
}

/// Random walk over adjacent hyperedges collecting `n` distinct edges.
fn walk(data: &Hypergraph, n: usize, rng: &mut StdRng) -> Option<Vec<EdgeId>> {
    let start = EdgeId::new(rng.random_range(0..data.num_edges() as u32));
    let mut edges = vec![start];
    // Frontier: all edges adjacent to the selected set.
    for _ in 1..n {
        let mut neighbors: Vec<u32> = Vec::new();
        for &e in &edges {
            for &v in data.edge_vertices(e) {
                neighbors.extend_from_slice(data.incident_edges(VertexId::new(v)));
            }
        }
        neighbors.sort_unstable();
        neighbors.dedup();
        neighbors.retain(|&e| !edges.contains(&EdgeId::new(e)));
        if neighbors.is_empty() {
            return None;
        }
        let pick = neighbors[rng.random_range(0..neighbors.len())];
        edges.push(EdgeId::new(pick));
    }
    Some(edges)
}

fn distinct_vertices(data: &Hypergraph, edges: &[EdgeId]) -> usize {
    let mut vs: Vec<u32> = edges
        .iter()
        .flat_map(|&e| data.edge_vertices(e))
        .copied()
        .collect();
    vs.sort_unstable();
    vs.dedup();
    vs.len()
}

/// Extracts the sub-hypergraph induced by `edges`, renumbering vertices
/// densely and preserving labels.
fn extract(data: &Hypergraph, edges: &[EdgeId]) -> Hypergraph {
    let mut vertex_ids: Vec<u32> = edges
        .iter()
        .flat_map(|&e| data.edge_vertices(e))
        .copied()
        .collect();
    vertex_ids.sort_unstable();
    vertex_ids.dedup();

    let mut builder = HypergraphBuilder::new();
    for &v in &vertex_ids {
        builder.add_vertex(data.label(VertexId::new(v)));
    }
    for &e in edges {
        let renumbered: Vec<u32> = data
            .edge_vertices(e)
            .iter()
            .map(|&v| vertex_ids.binary_search(&v).expect("member vertex") as u32)
            .collect();
        builder
            .add_edge(renumbered)
            .expect("extracted edges are valid");
    }
    builder.build().expect("extracted sub-hypergraph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn data() -> Hypergraph {
        generate(&GeneratorConfig {
            num_vertices: 400,
            num_edges: 2_000,
            num_labels: 4,
            ..Default::default()
        })
    }

    #[test]
    fn table3_settings() {
        let s = standard_settings();
        assert_eq!(
            s[0],
            QuerySetting {
                name: "q2",
                num_edges: 2,
                min_vertices: 5,
                max_vertices: 15
            }
        );
        assert_eq!(s[3].num_edges, 6);
        assert_eq!(s[2].max_vertices, 30);
    }

    #[test]
    fn sampled_query_is_connected_with_requested_edges() {
        let h = data();
        for (i, setting) in standard_settings().iter().enumerate() {
            let q = sample_query(&h, setting, 100 + i as u64).expect("sample");
            assert_eq!(q.num_edges(), setting.num_edges, "{}", setting.name);
            // Connectivity: BFS over shared vertices must reach all edges.
            let qg = hgmatch_core::QueryGraph::new(&q).unwrap();
            assert!(
                qg.is_connected(),
                "{} produced a disconnected query",
                setting.name
            );
        }
    }

    #[test]
    fn sampled_query_has_an_embedding() {
        let h = data();
        let q = sample_query(&h, &standard_settings()[1], 7).expect("sample");
        let matcher = hgmatch_core::Matcher::new(&h);
        assert!(matcher.count(&q).unwrap() >= 1, "planted query must match");
    }

    #[test]
    fn deterministic_per_seed() {
        let h = data();
        let s = &standard_settings()[0];
        let a = sample_query(&h, s, 5).unwrap();
        let b = sample_query(&h, s, 5).unwrap();
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn too_few_edges_returns_none() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(hgmatch_hypergraph::Label::new(0));
        b.add_edge(vec![0]).unwrap();
        let tiny = b.build().unwrap();
        assert!(sample_query(&tiny, &standard_settings()[3], 1).is_none());
    }

    #[test]
    fn vertex_window_respected_when_attainable() {
        // Dataset with arity exactly 4: two edges span 5..=8 vertices, so a
        // [5, 15] window is attainable strictly.
        let h = generate(&GeneratorConfig {
            num_vertices: 200,
            num_edges: 500,
            num_labels: 3,
            arity: crate::generator::ArityDistribution::Fixed(4),
            ..Default::default()
        });
        let q = sample_query(&h, &standard_settings()[0], 3).unwrap();
        let n = q.num_vertices();
        assert!((5..=15).contains(&n), "got {n} vertices");
    }
}
