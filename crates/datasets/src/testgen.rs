//! Shared random generators for cross-crate test suites.
//!
//! Several integration suites (baseline cross-checks, serving-layer tests,
//! the dynamic-update differential harness) need the same ingredients: a
//! seeded random data hypergraph, a random connected sub-query planted in
//! it, a structurally mixed query workload, and a combinatorial blow-up
//! instance for cancellation/timeout paths. They used to be copy-pasted
//! per test file; this module is the single home. Everything is
//! deterministic per seed.

use hgmatch_hypergraph::{EdgeId, Hypergraph, HypergraphBuilder, Label, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded random hypergraph: `nv` vertices over `labels` labels, `ne`
/// edges with arities drawn uniformly from `min_arity..=max_arity`
/// (clamped to the vertex count). Repeated edges are dropped by the
/// builder, so the edge count is an upper bound on dense instances.
pub fn random_arity_hypergraph(
    seed: u64,
    nv: usize,
    ne: usize,
    labels: u32,
    min_arity: usize,
    max_arity: usize,
) -> Hypergraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = HypergraphBuilder::new();
    for _ in 0..nv {
        b.add_vertex(Label::new(rng.random_range(0..labels)));
    }
    for _ in 0..ne {
        let arity = rng.random_range(min_arity.min(nv)..=max_arity.min(nv));
        let mut edge: Vec<u32> = Vec::new();
        while edge.len() < arity {
            let v = rng.random_range(0..nv as u32);
            if !edge.contains(&v) {
                edge.push(v);
            }
        }
        let _ = b.add_edge(edge).expect("vertices exist");
    }
    b.build().expect("random graph builds")
}

/// [`random_arity_hypergraph`] with the historical arity floor of 1.
pub fn random_hypergraph(
    seed: u64,
    nv: usize,
    ne: usize,
    labels: u32,
    max_arity: usize,
) -> Hypergraph {
    random_arity_hypergraph(seed, nv, ne, labels, 1, max_arity)
}

/// Samples a connected `k`-edge sub-hypergraph of `data` and re-numbers it
/// into a standalone query (which therefore has at least one embedding).
/// `None` when `data` cannot supply one (too few edges, dead-end walk).
pub fn random_subquery(data: &Hypergraph, seed: u64, k: usize) -> Option<Hypergraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    if data.num_edges() < k {
        return None;
    }
    let mut edges = vec![rng.random_range(0..data.num_edges() as u32)];
    for _ in 1..k {
        let mut frontier: Vec<u32> = Vec::new();
        for &e in &edges {
            for &v in data.edge_vertices(EdgeId::new(e)) {
                frontier.extend_from_slice(data.incident_edges(VertexId::new(v)));
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        frontier.retain(|e| !edges.contains(e));
        if frontier.is_empty() {
            return None;
        }
        edges.push(frontier[rng.random_range(0..frontier.len())]);
    }
    let mut vertices: Vec<u32> = edges
        .iter()
        .flat_map(|&e| data.edge_vertices(EdgeId::new(e)))
        .copied()
        .collect();
    vertices.sort_unstable();
    vertices.dedup();
    let mut b = HypergraphBuilder::new();
    for &v in &vertices {
        b.add_vertex(data.label(VertexId::new(v)));
    }
    for &e in &edges {
        let renumbered: Vec<u32> = data
            .edge_vertices(EdgeId::new(e))
            .iter()
            .map(|&v| vertices.binary_search(&v).expect("member vertex") as u32)
            .collect();
        b.add_edge(renumbered).expect("vertices exist");
    }
    Some(b.build().expect("subquery builds"))
}

/// A small workload of structurally different queries over a 3-label
/// space: single edges of arity 2–3, a shared-vertex pair, a mixed-arity
/// path, and one infeasible query (label 9). At least 8 queries, as the
/// concurrent serving tests require.
pub fn workload_queries() -> Vec<Hypergraph> {
    let mut queries = Vec::new();
    // Single edges of arity 2 and 3 across a few label combos.
    for labels in [
        vec![0u32, 0],
        vec![0, 1],
        vec![1, 2],
        vec![0, 1, 2],
        vec![0, 0, 1],
    ] {
        let mut b = HypergraphBuilder::new();
        for &l in &labels {
            b.add_vertex(Label::new(l));
        }
        b.add_edge((0..labels.len() as u32).collect()).unwrap();
        queries.push(b.build().unwrap());
    }
    // Two {0,1} edges sharing the 0-labelled vertex.
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 1, 1] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![0, 1]).unwrap();
    b.add_edge(vec![0, 2]).unwrap();
    queries.push(b.build().unwrap());
    // A 3-edge path mixing arities.
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 1, 2, 0] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![0, 1]).unwrap();
    b.add_edge(vec![1, 2]).unwrap();
    b.add_edge(vec![2, 3]).unwrap();
    queries.push(b.build().unwrap());
    // Infeasible: a label absent from the dataset.
    let mut b = HypergraphBuilder::new();
    b.add_vertices(2, Label::new(9));
    b.add_edge(vec![0, 1]).unwrap();
    queries.push(b.build().unwrap());
    queries
}

/// A combinatorial blow-up pair: `n` same-label vertices with every pair
/// as a data hyperedge, queried with a path of `m` {A,A} edges. Embedding
/// counts explode with `n` — what cancellation and timeout tests need.
pub fn blowup(n: u32, m: u32) -> (Hypergraph, Hypergraph) {
    let mut d = HypergraphBuilder::new();
    d.add_vertices(n as usize, Label::new(0));
    for i in 0..n {
        for j in (i + 1)..n {
            d.add_edge(vec![i, j]).unwrap();
        }
    }
    let mut q = HypergraphBuilder::new();
    q.add_vertices(m as usize + 1, Label::new(0));
    for i in 0..m {
        q.add_edge(vec![i, i + 1]).unwrap();
    }
    (d.build().unwrap(), q.build().unwrap())
}

/// The paper's Fig. 1b data hypergraph (labels A=0, B=1, C=2).
pub fn paper_data() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![2, 4]).unwrap();
    b.add_edge(vec![4, 6]).unwrap();
    b.add_edge(vec![0, 1, 2]).unwrap();
    b.add_edge(vec![3, 5, 6]).unwrap();
    b.add_edge(vec![0, 1, 4, 6]).unwrap();
    b.add_edge(vec![2, 3, 4, 5]).unwrap();
    b.build().unwrap()
}

/// The paper's Fig. 1a query hypergraph (two embeddings in [`paper_data`]).
pub fn paper_query() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 2, 0, 0, 1] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![2, 4]).unwrap();
    b.add_edge(vec![0, 1, 2]).unwrap();
    b.add_edge(vec![0, 1, 3, 4]).unwrap();
    b.build().unwrap()
}

/// The rebuild-from-scratch oracle of the dynamic-update differential
/// suites: a fresh offline build over `graph`'s vertices and edges in
/// order. A dynamic snapshot is correct iff it equals this.
pub fn rebuild_oracle(graph: &Hypergraph) -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for &l in graph.labels() {
        b.add_vertex(l);
    }
    for (_, vs) in graph.iter_edges() {
        b.add_edge(vs.to_vec())
            .expect("edges of a built graph are valid");
    }
    b.build().expect("rebuild")
}

/// Deterministic splitmix64 stream for deriving op sequences and random
/// orders from a test-chosen seed — the shared RNG of the differential
/// suites (`prop_dynamic`, `prop_stats`, `prop_orders`), which want
/// reproducibility from a single `u64` without threading a full RNG
/// through.
pub struct TestRng(pub u64);

impl TestRng {
    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Worker-thread count for concurrency suites: `HGMATCH_WORKERS` when set
/// (the CI test matrix pins it to 1 and 4), else `default`.
pub fn env_workers(default: usize) -> usize {
    std::env::var("HGMATCH_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_hypergraph_is_deterministic_and_shaped() {
        let a = random_arity_hypergraph(9, 30, 60, 3, 2, 4);
        let b = random_arity_hypergraph(9, 30, 60, 3, 2, 4);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.num_edges() > 0 && a.num_edges() <= 60);
        assert!(a.max_arity() <= 4);
        for (_, vs) in a.iter_edges() {
            assert!(vs.len() >= 2);
        }
    }

    #[test]
    fn subqueries_are_planted() {
        let data = random_hypergraph(4, 12, 20, 2, 3);
        let q = random_subquery(&data, 11, 2).expect("sample");
        assert_eq!(q.num_edges(), 2);
        // Planted: the (renumbered) sub-hypergraph exists in the data, so
        // every edge signature must occur.
        for (_, vs) in q.iter_edges() {
            let sig = hgmatch_hypergraph::Signature::new(
                vs.iter().map(|&v| q.label(VertexId::new(v))).collect(),
            );
            assert!(data.cardinality(&sig) > 0);
        }
    }

    #[test]
    fn workload_has_enough_queries() {
        let queries = workload_queries();
        assert!(queries.len() >= 8);
    }

    #[test]
    fn blowup_shapes() {
        let (d, q) = blowup(6, 3);
        assert_eq!(d.num_edges(), 15);
        assert_eq!(q.num_edges(), 3);
    }

    #[test]
    fn env_workers_defaults() {
        // The variable is not set in unit-test runs unless CI exports it;
        // either way the result is a positive thread count.
        assert!(env_workers(4) >= 1);
    }
}
