//! JF17K-like knowledge-base hypergraph (paper §VII-D case study).
//!
//! The case study runs subhypergraph matching as question answering over a
//! hypergraph knowledge base extracted from Freebase: vertices are typed
//! entities, hyperedges are n-ary facts such as *(Player, Team, Match)* —
//! "a player played in a match representing a team" — and *(Actor,
//! Character, TVShow, Season)*. The real JF17K dump is not bundled; this
//! generator emits a synthetic knowledge base with the same fact schemas
//! and *plants* answer patterns for the two example queries of Fig. 13 so
//! the case study has non-trivial results.

use hgmatch_hypergraph::{Hypergraph, HypergraphBuilder, Label};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Entity types (vertex labels) in the knowledge base.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum EntityType {
    /// Football player.
    Player = 0,
    /// Football team.
    Team = 1,
    /// Football match.
    Match = 2,
    /// TV actor.
    Actor = 3,
    /// TV character.
    Character = 4,
    /// TV show.
    TvShow = 5,
    /// TV show season.
    Season = 6,
}

impl EntityType {
    /// The label encoding this type.
    pub fn label(self) -> Label {
        Label::new(self as u32)
    }

    /// Human-readable type name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Player => "Player",
            Self::Team => "Team",
            Self::Match => "Match",
            Self::Actor => "Actor",
            Self::Character => "Character",
            Self::TvShow => "TVShow",
            Self::Season => "Season",
        }
    }
}

/// Knowledge-base generation parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeBaseConfig {
    /// Players / actors per domain.
    pub num_players: usize,
    /// Teams.
    pub num_teams: usize,
    /// Matches.
    pub num_matches: usize,
    /// (Player, Team, Match) facts.
    pub num_played_facts: usize,
    /// Actors.
    pub num_actors: usize,
    /// Characters.
    pub num_characters: usize,
    /// TV shows.
    pub num_shows: usize,
    /// Seasons per show (seasons are entities shared across shows here).
    pub num_seasons: usize,
    /// (Actor, Character, TVShow, Season) facts.
    pub num_casting_facts: usize,
    /// Players deliberately given facts with two different teams (answers
    /// to example query 1).
    pub planted_multi_team_players: usize,
    /// Characters deliberately played by two actors in different seasons
    /// (answers to example query 2).
    pub planted_recast_characters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KnowledgeBaseConfig {
    fn default() -> Self {
        Self {
            num_players: 400,
            num_teams: 40,
            num_matches: 120,
            num_played_facts: 1_500,
            num_actors: 300,
            num_characters: 250,
            num_shows: 60,
            num_seasons: 12,
            num_casting_facts: 1_200,
            planted_multi_team_players: 25,
            planted_recast_characters: 15,
            seed: 2023,
        }
    }
}

/// A generated knowledge base: the hypergraph plus entity-name metadata.
#[derive(Debug)]
pub struct KnowledgeBase {
    /// The fact hypergraph.
    pub graph: Hypergraph,
    /// `names[v]` is a readable entity name ("Player17", "Team3", …).
    pub names: Vec<String>,
}

impl KnowledgeBase {
    /// Generates a knowledge base.
    pub fn generate(config: &KnowledgeBaseConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut builder = HypergraphBuilder::new();
        let mut names = Vec::new();

        let add_entities = |builder: &mut HypergraphBuilder,
                            names: &mut Vec<String>,
                            ty: EntityType,
                            n: usize|
         -> Vec<u32> {
            (0..n)
                .map(|i| {
                    names.push(format!("{}{}", ty.name(), i));
                    builder.add_vertex(ty.label()).raw()
                })
                .collect()
        };

        let players = add_entities(
            &mut builder,
            &mut names,
            EntityType::Player,
            config.num_players,
        );
        let teams = add_entities(&mut builder, &mut names, EntityType::Team, config.num_teams);
        let matches = add_entities(
            &mut builder,
            &mut names,
            EntityType::Match,
            config.num_matches,
        );
        let actors = add_entities(
            &mut builder,
            &mut names,
            EntityType::Actor,
            config.num_actors,
        );
        let characters = add_entities(
            &mut builder,
            &mut names,
            EntityType::Character,
            config.num_characters,
        );
        let shows = add_entities(
            &mut builder,
            &mut names,
            EntityType::TvShow,
            config.num_shows,
        );
        let seasons = add_entities(
            &mut builder,
            &mut names,
            EntityType::Season,
            config.num_seasons,
        );

        let pick = |rng: &mut StdRng, pool: &[u32]| pool[rng.random_range(0..pool.len())];

        // Planted multi-team players: two facts with distinct teams/matches.
        for i in 0..config.planted_multi_team_players.min(players.len()) {
            let p = players[i];
            let t1 = teams[i % config.num_teams];
            let t2 = teams[(i + 1) % config.num_teams];
            let m1 = matches[(2 * i) % config.num_matches];
            let m2 = matches[(2 * i + 1) % config.num_matches];
            if t1 != t2 && m1 != m2 {
                let _ = builder.add_edge(vec![p, t1, m1]);
                let _ = builder.add_edge(vec![p, t2, m2]);
            }
        }
        // Background played-in facts: players stick to one team (no extra
        // multi-team answers beyond random collisions).
        for _ in 0..config.num_played_facts {
            let p = pick(&mut rng, &players);
            // Deterministic team per player keeps unplanted players single-team.
            let t = teams[(p as usize * 7) % teams.len()];
            let m = pick(&mut rng, &matches);
            let _ = builder.add_edge(vec![p, t, m]);
        }

        // Planted recast characters: same character+show, two actors, two
        // seasons.
        for i in 0..config.planted_recast_characters.min(characters.len()) {
            let c = characters[i];
            let show = shows[i % config.num_shows];
            let a1 = actors[(2 * i) % config.num_actors];
            let a2 = actors[(2 * i + 1) % config.num_actors];
            let s1 = seasons[i % config.num_seasons];
            let s2 = seasons[(i + 1) % config.num_seasons];
            if a1 != a2 && s1 != s2 {
                let _ = builder.add_edge(vec![a1, c, show, s1]);
                let _ = builder.add_edge(vec![a2, c, show, s2]);
            }
        }
        // Background casting facts: a character is bound to one actor.
        for _ in 0..config.num_casting_facts {
            let c = pick(&mut rng, &characters);
            let a = actors[(c as usize * 5) % actors.len()];
            let show = shows[(c as usize * 3) % shows.len()];
            let s = pick(&mut rng, &seasons);
            let _ = builder.add_edge(vec![a, c, show, s]);
        }

        let graph = builder
            .build()
            .expect("knowledge base is structurally valid");
        Self { graph, names }
    }

    /// Fig. 13a — "Football players who represented different teams in
    /// different matches": two (Player, Team, Match) facts sharing the
    /// player, with distinct teams and matches (injectivity enforces
    /// distinctness).
    pub fn query_multi_team_player() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let p = b.add_vertex(EntityType::Player.label()).raw();
        let t1 = b.add_vertex(EntityType::Team.label()).raw();
        let t2 = b.add_vertex(EntityType::Team.label()).raw();
        let m1 = b.add_vertex(EntityType::Match.label()).raw();
        let m2 = b.add_vertex(EntityType::Match.label()).raw();
        b.add_edge(vec![p, t1, m1]).unwrap();
        b.add_edge(vec![p, t2, m2]).unwrap();
        b.build().unwrap()
    }

    /// Fig. 13b — "Actors who played the same character in a TV show on
    /// different seasons": two (Actor, Character, TVShow, Season) facts
    /// sharing character and show, with distinct actors and seasons.
    pub fn query_recast_character() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        let a1 = b.add_vertex(EntityType::Actor.label()).raw();
        let a2 = b.add_vertex(EntityType::Actor.label()).raw();
        let c = b.add_vertex(EntityType::Character.label()).raw();
        let show = b.add_vertex(EntityType::TvShow.label()).raw();
        let s1 = b.add_vertex(EntityType::Season.label()).raw();
        let s2 = b.add_vertex(EntityType::Season.label()).raw();
        b.add_edge(vec![a1, c, show, s1]).unwrap();
        b.add_edge(vec![a2, c, show, s2]).unwrap();
        b.build().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_core::Matcher;

    #[test]
    fn generates_typed_entities() {
        let kb = KnowledgeBase::generate(&KnowledgeBaseConfig::default());
        assert_eq!(kb.names.len(), kb.graph.num_vertices());
        assert!(kb.names[0].starts_with("Player"));
        assert!(kb.graph.num_edges() > 1_000);
        // Only arity-3 and arity-4 facts exist.
        for (_, vs) in kb.graph.iter_edges() {
            assert!(vs.len() == 3 || vs.len() == 4);
        }
    }

    #[test]
    fn planted_answers_found_query1() {
        let config = KnowledgeBaseConfig::default();
        let kb = KnowledgeBase::generate(&config);
        let q = KnowledgeBase::query_multi_team_player();
        let count = Matcher::new(&kb.graph).count(&q).unwrap();
        // Each planted player yields ≥2 ordered embeddings (edge swap);
        // random background collisions can add more.
        assert!(
            count >= 2 * config.planted_multi_team_players as u64,
            "planted answers missing: {count}"
        );
    }

    #[test]
    fn planted_answers_found_query2() {
        let config = KnowledgeBaseConfig::default();
        let kb = KnowledgeBase::generate(&config);
        let q = KnowledgeBase::query_recast_character();
        let count = Matcher::new(&kb.graph).count(&q).unwrap();
        assert!(
            count >= 2 * config.planted_recast_characters as u64,
            "planted answers missing: {count}"
        );
    }

    #[test]
    fn queries_have_expected_shapes() {
        let q1 = KnowledgeBase::query_multi_team_player();
        assert_eq!(q1.num_vertices(), 5);
        assert_eq!(q1.num_edges(), 2);
        let q2 = KnowledgeBase::query_recast_character();
        assert_eq!(q2.num_vertices(), 6);
        assert_eq!(q2.num_edges(), 2);
    }

    #[test]
    fn deterministic() {
        let a = KnowledgeBase::generate(&KnowledgeBaseConfig::default());
        let b = KnowledgeBase::generate(&KnowledgeBaseConfig::default());
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    }
}
