//! Per-dataset generator profiles mirroring the paper's Table II.
//!
//! Each profile reproduces a real dataset's *shape* — label alphabet, arity
//! distribution family, vertex/hyperedge ratio, degree skew — scaled to run
//! on a laptop. The large datasets (MA, SA, AR) are scaled down by the
//! factor recorded in [`DatasetProfile::scale`]; the small contact/committee
//! datasets keep their original sizes.

use hgmatch_hypergraph::Hypergraph;
use serde::{Deserialize, Serialize};

use crate::generator::{generate, ArityDistribution, GeneratorConfig};

/// A named dataset profile (one row of Table II, scaled).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Paper dataset code (HC, MA, …) with an `-S` suffix when scaled.
    pub name: &'static str,
    /// Human-readable description from the paper.
    pub description: &'static str,
    /// Scale factor versus the real dataset (1.0 = full size).
    pub scale: f64,
    /// Generator configuration realising the profile.
    pub config: GeneratorConfig,
}

impl DatasetProfile {
    /// Generates the dataset.
    pub fn generate(&self) -> Hypergraph {
        generate(&self.config)
    }

    /// Generates with a different seed (for repetition studies).
    pub fn generate_seeded(&self, seed: u64) -> Hypergraph {
        generate(&GeneratorConfig {
            seed,
            ..self.config.clone()
        })
    }
}

/// All ten paper dataset profiles, in Table II order.
pub fn all_profiles() -> Vec<DatasetProfile> {
    vec![
        DatasetProfile {
            name: "HC",
            description: "house committees: few labels, very large hyperedges",
            scale: 1.0,
            config: GeneratorConfig {
                num_vertices: 1_290,
                num_edges: 331,
                num_labels: 2,
                label_skew: 0.3,
                arity: ArityDistribution::Geometric {
                    min: 12,
                    p: 0.045,
                    max: 81,
                },
                degree_skew: 0.7,
                seed: 0x4843,
            },
        },
        DatasetProfile {
            name: "MA-S",
            description: "MathOverflow answers: huge alphabet, large hyperedges (1/4 scale)",
            scale: 0.25,
            config: GeneratorConfig {
                num_vertices: 18_463,
                num_edges: 1_361,
                num_labels: 364,
                label_skew: 0.9,
                arity: ArityDistribution::Geometric {
                    min: 4,
                    p: 0.048,
                    max: 180,
                },
                degree_skew: 0.9,
                seed: 0x4D41,
            },
        },
        DatasetProfile {
            name: "CH",
            description: "contact high school: tiny arity, few labels",
            scale: 1.0,
            config: GeneratorConfig {
                num_vertices: 327,
                num_edges: 7_818,
                num_labels: 9,
                label_skew: 0.4,
                arity: ArityDistribution::Geometric {
                    min: 2,
                    p: 0.75,
                    max: 5,
                },
                degree_skew: 0.6,
                seed: 0x4348,
            },
        },
        DatasetProfile {
            name: "CP",
            description: "contact primary school: tiny arity, few labels",
            scale: 1.0,
            config: GeneratorConfig {
                num_vertices: 242,
                num_edges: 12_704,
                num_labels: 11,
                label_skew: 0.4,
                arity: ArityDistribution::Geometric {
                    min: 2,
                    p: 0.72,
                    max: 5,
                },
                degree_skew: 0.6,
                seed: 0x4350,
            },
        },
        DatasetProfile {
            name: "SB",
            description: "senate bills: two labels, mid arity, strong hubs",
            scale: 1.0,
            config: GeneratorConfig {
                num_vertices: 294,
                num_edges: 20_584,
                num_labels: 2,
                label_skew: 0.2,
                arity: ArityDistribution::Geometric {
                    min: 3,
                    p: 0.17,
                    max: 99,
                },
                degree_skew: 1.0,
                seed: 0x5342,
            },
        },
        DatasetProfile {
            name: "HB-S",
            description: "house bills: two labels, large hyperedges (1/4 scale)",
            scale: 0.25,
            config: GeneratorConfig {
                num_vertices: 1_494,
                num_edges: 13_240,
                num_labels: 2,
                label_skew: 0.2,
                arity: ArityDistribution::Geometric {
                    min: 4,
                    p: 0.057,
                    max: 200,
                },
                degree_skew: 1.0,
                seed: 0x4842,
            },
        },
        DatasetProfile {
            name: "WT-S",
            description: "Walmart trips: moderate arity, 11 departments (1/2 scale)",
            scale: 0.5,
            config: GeneratorConfig {
                num_vertices: 44_430,
                num_edges: 32_753,
                num_labels: 11,
                label_skew: 0.6,
                arity: ArityDistribution::Geometric {
                    min: 2,
                    p: 0.18,
                    max: 25,
                },
                degree_skew: 0.8,
                seed: 0x5754,
            },
        },
        DatasetProfile {
            name: "TC-S",
            description: "Trivago clicks: small arity, 160 labels (1/4 scale)",
            scale: 0.25,
            config: GeneratorConfig {
                num_vertices: 43_184,
                num_edges: 53_120,
                num_labels: 160,
                label_skew: 0.8,
                arity: ArityDistribution::Geometric {
                    min: 2,
                    p: 0.33,
                    max: 85,
                },
                degree_skew: 0.8,
                seed: 0x5443,
            },
        },
        DatasetProfile {
            name: "SA-S",
            description: "StackOverflow answers: huge sparse graph, huge alphabet (1/128 scale)",
            scale: 1.0 / 128.0,
            config: GeneratorConfig {
                num_vertices: 118_843,
                num_edges: 8_618,
                num_labels: 441,
                label_skew: 1.0,
                arity: ArityDistribution::Geometric {
                    min: 4,
                    p: 0.05,
                    max: 480,
                },
                degree_skew: 1.0,
                seed: 0x5341,
            },
        },
        DatasetProfile {
            name: "AR-S",
            description: "Amazon reviews: millions of edges in the original (1/64 scale)",
            scale: 1.0 / 64.0,
            config: GeneratorConfig {
                num_vertices: 35_441,
                num_edges: 66_236,
                num_labels: 29,
                label_skew: 0.7,
                arity: ArityDistribution::Geometric {
                    min: 2,
                    p: 0.062,
                    max: 146,
                },
                degree_skew: 1.1,
                seed: 0x4152,
            },
        },
    ]
}

/// Looks up a profile by (case-insensitive) name, with or without the `-S`
/// scale suffix.
pub fn profile_by_name(name: &str) -> Option<DatasetProfile> {
    let lower = name.to_ascii_lowercase();
    all_profiles().into_iter().find(|p| {
        let pname = p.name.to_ascii_lowercase();
        pname == lower || pname.trim_end_matches("-s") == lower
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_profiles_in_paper_order() {
        let names: Vec<&str> = all_profiles().iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["HC", "MA-S", "CH", "CP", "SB", "HB-S", "WT-S", "TC-S", "SA-S", "AR-S"]
        );
    }

    #[test]
    fn lookup_accepts_suffixless_names() {
        assert_eq!(profile_by_name("ma").unwrap().name, "MA-S");
        assert_eq!(profile_by_name("MA-S").unwrap().name, "MA-S");
        assert_eq!(profile_by_name("HC").unwrap().name, "HC");
        assert!(profile_by_name("nope").is_none());
    }

    #[test]
    fn hc_profile_has_paper_shape() {
        let h = profile_by_name("HC").unwrap().generate();
        let stats = h.stats();
        assert_eq!(stats.num_vertices, 1_290);
        assert!(
            stats.num_edges >= 300,
            "dedup losses should be small: {}",
            stats.num_edges
        );
        assert!(stats.num_labels <= 2);
        // Average arity should land near the paper's 34.8 (±40%).
        assert!(
            (20.0..50.0).contains(&stats.avg_arity),
            "avg arity {}",
            stats.avg_arity
        );
        assert!(stats.max_arity <= 81);
    }

    #[test]
    fn ch_profile_small_arity() {
        let h = profile_by_name("CH").unwrap().generate();
        let stats = h.stats();
        assert!(stats.max_arity <= 5);
        assert!(
            (1.8..3.2).contains(&stats.avg_arity),
            "paper: 2.3, got {}",
            stats.avg_arity
        );
    }

    #[test]
    fn seeded_regeneration_differs() {
        let p = profile_by_name("CH").unwrap();
        let a = p.generate();
        let b = p.generate_seeded(999);
        assert_eq!(a.num_vertices(), b.num_vertices());
        let differs = (0..a.num_edges().min(b.num_edges())).any(|i| {
            a.edge_vertices(hgmatch_hypergraph::EdgeId::from_index(i))
                != b.edge_vertices(hgmatch_hypergraph::EdgeId::from_index(i))
        });
        assert!(differs);
    }
}
