//! Update-stream generation: random insert/delete workloads for the
//! dynamic-hypergraph subsystem.
//!
//! A stream is a sequence of [`UpdateOp`]s against a base hypergraph,
//! generated with a configurable insert:delete mix. The generator tracks
//! the live edge set as it goes, so every delete targets an edge that
//! exists at that point of the stream and every insert is fresh —
//! replaying the stream on [`hgmatch_hypergraph::DynamicHypergraph`]
//! performs `ops` *effective* mutations. Text serialisation lives next to
//! the op type ([`hgmatch_hypergraph::dynamic::write_update_stream`]).

use hgmatch_hypergraph::{Hypergraph, UpdateOp};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Shape of a generated update stream.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStreamConfig {
    /// Total operations to generate.
    pub ops: usize,
    /// Fraction of operations that are insertions, in `[0, 1]` (an
    /// insert:delete ratio of 7:3 is `0.7`). Deletes fall back to inserts
    /// while the live set is empty.
    pub insert_ratio: f64,
    /// Smallest hyperedge arity to insert.
    pub min_arity: usize,
    /// Largest hyperedge arity to insert.
    pub max_arity: usize,
    /// RNG seed (streams are deterministic per seed).
    pub seed: u64,
}

impl Default for UpdateStreamConfig {
    fn default() -> Self {
        Self {
            ops: 1_000,
            insert_ratio: 0.7,
            min_arity: 2,
            max_arity: 4,
            seed: 7,
        }
    }
}

/// Generates an update stream against `base` (its vertices are the vertex
/// universe; its edges seed the live set that deletions draw from).
///
/// # Panics
/// Panics if `base` has no vertices or the arity window is empty.
pub fn generate_update_stream(base: &Hypergraph, config: &UpdateStreamConfig) -> Vec<UpdateOp> {
    assert!(base.num_vertices() > 0, "stream needs a vertex universe");
    assert!(
        (1..=base.num_vertices()).contains(&config.min_arity)
            && config.min_arity <= config.max_arity,
        "invalid arity window"
    );
    let nv = base.num_vertices() as u32;
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Live edge set: vector for uniform sampling, membership via sort-key.
    let mut live: Vec<Vec<u32>> = base.iter_edges().map(|(_, vs)| vs.to_vec()).collect();
    let mut member: std::collections::HashSet<Vec<u32>> = live.iter().cloned().collect();

    let mut ops = Vec::with_capacity(config.ops);
    while ops.len() < config.ops {
        let want_insert = rng.random::<f64>() < config.insert_ratio || live.is_empty();
        if want_insert {
            // Draw a fresh sorted vertex set; retry on collisions with the
            // live set (bounded, then give up and delete instead).
            let mut inserted = false;
            for _ in 0..64 {
                let arity = rng.random_range(config.min_arity..=config.max_arity.min(nv as usize));
                let mut edge: Vec<u32> = Vec::with_capacity(arity);
                while edge.len() < arity {
                    let v = rng.random_range(0..nv);
                    if !edge.contains(&v) {
                        edge.push(v);
                    }
                }
                edge.sort_unstable();
                if member.insert(edge.clone()) {
                    live.push(edge.clone());
                    ops.push(UpdateOp::Insert(edge));
                    inserted = true;
                    break;
                }
            }
            if inserted || live.is_empty() {
                continue;
            }
        }
        let idx = rng.random_range(0..live.len());
        let edge = live.swap_remove(idx);
        member.remove(&edge);
        ops.push(UpdateOp::Delete(edge));
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use hgmatch_hypergraph::DynamicHypergraph;

    fn base() -> Hypergraph {
        generate(&GeneratorConfig {
            num_vertices: 80,
            num_edges: 150,
            num_labels: 3,
            ..Default::default()
        })
    }

    #[test]
    fn streams_are_deterministic_and_sized() {
        let base = base();
        let cfg = UpdateStreamConfig::default();
        let a = generate_update_stream(&base, &cfg);
        let b = generate_update_stream(&base, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.ops);
    }

    #[test]
    fn ratio_roughly_respected() {
        let base = base();
        let ops = generate_update_stream(
            &base,
            &UpdateStreamConfig {
                ops: 2_000,
                insert_ratio: 0.7,
                ..Default::default()
            },
        );
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, UpdateOp::Insert(_)))
            .count();
        let ratio = inserts as f64 / ops.len() as f64;
        assert!((0.6..0.8).contains(&ratio), "insert ratio {ratio}");
    }

    #[test]
    fn every_op_is_effective_when_replayed() {
        let base = base();
        let ops = generate_update_stream(
            &base,
            &UpdateStreamConfig {
                ops: 400,
                insert_ratio: 0.5,
                seed: 42,
                ..Default::default()
            },
        );
        let mut d = DynamicHypergraph::from_hypergraph(&base);
        for op in &ops {
            assert!(d.apply(op).unwrap(), "{op:?} must be effective");
        }
    }

    #[test]
    fn delete_only_streams_drain_the_graph() {
        let base = base();
        let ops = generate_update_stream(
            &base,
            &UpdateStreamConfig {
                ops: base.num_edges(),
                insert_ratio: 0.0,
                ..Default::default()
            },
        );
        assert!(ops.iter().all(|o| matches!(o, UpdateOp::Delete(_))));
        let mut d = DynamicHypergraph::from_hypergraph(&base);
        for op in &ops {
            d.apply(op).unwrap();
        }
        assert_eq!(d.num_edges(), 0);
    }

    #[test]
    fn text_round_trip() {
        let base = base();
        let ops = generate_update_stream(
            &base,
            &UpdateStreamConfig {
                ops: 50,
                ..Default::default()
            },
        );
        let text = hgmatch_hypergraph::dynamic::write_update_stream(&ops);
        let parsed = hgmatch_hypergraph::dynamic::parse_update_stream(&text).unwrap();
        assert_eq!(parsed, ops);
    }
}
