//! Property-based tests of the storage substrate: set-operation algebra
//! against a `BTreeSet` oracle, signature multiset semantics, builder
//! invariants, and I/O round-trips.

use std::collections::BTreeSet;

use hgmatch_hypergraph::{io, setops, HypergraphBuilder, Label, Signature};
use proptest::prelude::*;

fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0u32..500, 0..60)
        .prop_map(|s| s.into_iter().collect::<Vec<u32>>())
}

proptest! {
    #[test]
    fn intersect_matches_btreeset(a in sorted_set(), b in sorted_set()) {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let expected: Vec<u32> = sa.intersection(&sb).copied().collect();
        prop_assert_eq!(setops::intersect(&a, &b), expected);
    }

    #[test]
    fn union_matches_btreeset(a in sorted_set(), b in sorted_set()) {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let expected: Vec<u32> = sa.union(&sb).copied().collect();
        prop_assert_eq!(setops::union(&a, &b), expected);
    }

    #[test]
    fn difference_matches_btreeset(a in sorted_set(), b in sorted_set()) {
        let sa: BTreeSet<u32> = a.iter().copied().collect();
        let sb: BTreeSet<u32> = b.iter().copied().collect();
        let expected: Vec<u32> = sa.difference(&sb).copied().collect();
        prop_assert_eq!(setops::difference(&a, &b), expected);
    }

    #[test]
    fn intersects_iff_nonempty_intersection(a in sorted_set(), b in sorted_set()) {
        prop_assert_eq!(setops::intersects(&a, &b), !setops::intersect(&a, &b).is_empty());
    }

    #[test]
    fn subset_agrees_with_difference(a in sorted_set(), b in sorted_set()) {
        prop_assert_eq!(setops::is_subset(&a, &b), setops::difference(&a, &b).is_empty());
    }

    #[test]
    fn multiway_ops_match_pairwise(lists in proptest::collection::vec(sorted_set(), 0..6)) {
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let many = setops::intersect_many(refs.clone());
        let expected = match refs.split_first() {
            None => Vec::new(),
            Some((first, rest)) => {
                rest.iter().fold(first.to_vec(), |acc, s| setops::intersect(&acc, s))
            }
        };
        prop_assert_eq!(many, expected);

        let many_union = setops::union_many(refs.clone());
        let expected: Vec<u32> = {
            let mut all: BTreeSet<u32> = BTreeSet::new();
            for l in &lists {
                all.extend(l.iter().copied());
            }
            all.into_iter().collect()
        };
        prop_assert_eq!(many_union, expected);
    }

    #[test]
    fn outputs_stay_sorted(a in sorted_set(), b in sorted_set()) {
        prop_assert!(setops::is_strictly_sorted(&setops::intersect(&a, &b)));
        prop_assert!(setops::is_strictly_sorted(&setops::union(&a, &b)));
        prop_assert!(setops::is_strictly_sorted(&setops::difference(&a, &b)));
    }

    #[test]
    fn signature_equality_is_order_independent(mut labels in proptest::collection::vec(0u32..8, 1..10)) {
        let forward = Signature::new(labels.iter().map(|&l| Label::new(l)).collect());
        labels.reverse();
        let backward = Signature::new(labels.iter().map(|&l| Label::new(l)).collect());
        prop_assert_eq!(&forward, &backward);
        let total: usize = forward.label_counts().map(|(_, c)| c).sum();
        prop_assert_eq!(total, forward.arity());
    }
}

/// Strategy: a sorted set sized to sit on either side of the dispatcher's
/// gallop ratio (16×) against a partner of ~1000 elements — the adversarial
/// shapes for kernel selection: 1000/62 ≈ ratio boundary, plus far-smaller
/// and equal-size extremes.
fn ratio_adversarial_pair() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (0usize..5).prop_flat_map(|shape| {
        let small_size = match shape {
            0 => 1usize..4,      // extreme gallop
            1 => 50usize..70,    // straddles 1000/16 = 62.5
            2 => 120usize..140,  // just below ratio: merge/SIMD
            3 => 900usize..1100, // equal sized: SIMD block path
            _ => 15usize..17,    // SIMD_MIN_LEN boundary
        };
        (
            proptest::collection::btree_set(0u32..4000, small_size)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            proptest::collection::btree_set(0u32..4000, 950usize..1050)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// SIMD dispatch (intersection/difference) against the scalar oracle on
    /// adversarial size ratios, in both argument orders.
    #[test]
    fn simd_kernels_match_scalar_oracle((a, b) in ratio_adversarial_pair()) {
        let mut auto_out = Vec::new();
        let mut scalar_out = Vec::new();
        for (x, y) in [(&a, &b), (&b, &a)] {
            setops::intersect_into(x, y, &mut auto_out);
            setops::intersect_into_scalar(x, y, &mut scalar_out);
            prop_assert_eq!(&auto_out, &scalar_out);
            prop_assert!(setops::is_strictly_sorted(&auto_out));

            setops::difference_into(x, y, &mut auto_out);
            setops::difference_into_scalar(x, y, &mut scalar_out);
            prop_assert_eq!(&auto_out, &scalar_out);
            prop_assert!(setops::is_strictly_sorted(&auto_out));
        }
    }

    /// Bitmap set algebra against the scalar list kernels as oracle.
    #[test]
    fn bitmap_kernels_match_scalar_oracle((a, b) in ratio_adversarial_pair()) {
        use hgmatch_hypergraph::Bitmap;
        let domain = 4000u32;
        let ba = Bitmap::from_sorted(&a, domain);
        let bb = Bitmap::from_sorted(&b, domain);

        let mut and = ba.clone();
        and.intersect_assign(&bb);
        prop_assert_eq!(and.to_sorted(), setops::intersect(&a, &b));

        let mut or = ba.clone();
        or.union_assign(&bb);
        prop_assert_eq!(or.to_sorted(), setops::union(&a, &b));

        let mut not = ba.clone();
        not.difference_assign(&bb);
        prop_assert_eq!(not.to_sorted(), setops::difference(&a, &b));

        // Filter forms agree with materialised set algebra.
        let mut filtered = Vec::new();
        bb.filter_list_into(&a, &mut filtered);
        prop_assert_eq!(&filtered, &setops::intersect(&a, &b));
        bb.filter_list_out(&a, &mut filtered);
        prop_assert_eq!(&filtered, &setops::difference(&a, &b));
    }

    /// Degenerate inputs: empty, identical and disjoint lists through every
    /// dispatch path.
    #[test]
    fn kernel_edge_cases_hold(a in sorted_set()) {
        let empty: Vec<u32> = Vec::new();
        prop_assert_eq!(setops::intersect(&a, &empty), empty.clone());
        prop_assert_eq!(setops::intersect(&a, &a), a.clone());
        prop_assert_eq!(setops::difference(&a, &a), empty.clone());
        prop_assert_eq!(setops::difference(&a, &empty), a.clone());
        prop_assert_eq!(setops::union(&a, &empty), a.clone());
        let shifted: Vec<u32> = a.iter().map(|&v| v + 10_000).collect();
        prop_assert_eq!(setops::intersect(&a, &shifted), empty);
        prop_assert_eq!(setops::difference(&a, &shifted), a.clone());
    }

    /// The k-way tournament union agrees with a BTreeSet fold for any number
    /// of inputs (both below and above the tournament threshold).
    #[test]
    fn kway_union_matches_btreeset(lists in proptest::collection::vec(sorted_set(), 0..10)) {
        let mut refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut out = Vec::new();
        let mut scratch = setops::MultiwayScratch::new();
        setops::union_many_into(&mut refs, &mut out, &mut scratch);
        let expected: Vec<u32> = {
            let mut all: BTreeSet<u32> = BTreeSet::new();
            for l in &lists {
                all.extend(l.iter().copied());
            }
            all.into_iter().collect()
        };
        prop_assert_eq!(out, expected);
    }
}

/// Strategy: a random small hypergraph as (labels, edges).
fn hypergraph_parts() -> impl Strategy<Value = (Vec<u32>, Vec<Vec<u32>>)> {
    (2usize..30).prop_flat_map(|nv| {
        let labels = proptest::collection::vec(0u32..4, nv);
        let edges = proptest::collection::vec(
            proptest::collection::btree_set(0u32..nv as u32, 1..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..25,
        );
        (labels, edges)
    })
}

fn build(labels: &[u32], edges: &[Vec<u32>]) -> hgmatch_hypergraph::Hypergraph {
    let mut b = HypergraphBuilder::new();
    for &l in labels {
        b.add_vertex(Label::new(l));
    }
    for e in edges {
        let _ = b.add_edge(e.clone()).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_invariants((labels, edges) in hypergraph_parts()) {
        let h = build(&labels, &edges);
        // Every edge is sorted and within bounds; locator agrees with
        // partition contents; incidence lists are sorted and consistent.
        let mut incidence_total = 0usize;
        for (e, vs) in h.iter_edges() {
            prop_assert!(setops::is_strictly_sorted(vs));
            prop_assert!(vs.iter().all(|&v| (v as usize) < h.num_vertices()));
            let loc = h.locate(e);
            let p = h.partition(loc.signature);
            prop_assert_eq!(p.row(loc.row), vs);
            prop_assert_eq!(p.global_id(loc.row), e);
            incidence_total += vs.len();
        }
        let from_vertices: usize = (0..h.num_vertices())
            .map(|v| h.degree(hgmatch_hypergraph::VertexId::from_index(v)))
            .sum();
        prop_assert_eq!(incidence_total, from_vertices);
        for v in 0..h.num_vertices() {
            let vid = hgmatch_hypergraph::VertexId::from_index(v);
            prop_assert!(setops::is_strictly_sorted(h.incident_edges(vid)));
            for &e in h.incident_edges(vid) {
                prop_assert!(h
                    .edge_vertices(hgmatch_hypergraph::EdgeId::new(e))
                    .binary_search(&(v as u32))
                    .is_ok());
            }
        }
    }

    #[test]
    fn find_edge_finds_all_and_only_edges((labels, edges) in hypergraph_parts()) {
        let h = build(&labels, &edges);
        for (e, vs) in h.iter_edges() {
            prop_assert_eq!(h.find_edge(vs), Some(e));
        }
    }

    #[test]
    fn text_roundtrip((labels, edges) in hypergraph_parts()) {
        let h = build(&labels, &edges);
        let mut lbuf = Vec::new();
        let mut ebuf = Vec::new();
        io::write_text(&h, &mut lbuf, &mut ebuf).unwrap();
        let h2 = io::read_text(lbuf.as_slice(), ebuf.as_slice()).unwrap();
        prop_assert_eq!(h.labels(), h2.labels());
        prop_assert_eq!(h.num_edges(), h2.num_edges());
        for (e, vs) in h.iter_edges() {
            prop_assert_eq!(h2.edge_vertices(e), vs);
        }
    }

    #[test]
    fn binary_roundtrip((labels, edges) in hypergraph_parts()) {
        let h = build(&labels, &edges);
        let bytes = io::encode_binary(&h);
        let h2 = io::decode_binary(&bytes).unwrap();
        prop_assert_eq!(h.labels(), h2.labels());
        for (e, vs) in h.iter_edges() {
            prop_assert_eq!(h2.edge_vertices(e), vs);
        }
    }

    #[test]
    fn binary_truncation_never_panics((labels, edges) in hypergraph_parts(), cut in 0usize..64) {
        let h = build(&labels, &edges);
        let bytes = io::encode_binary(&h);
        let cut = cut.min(bytes.len().saturating_sub(1));
        // Any strict prefix must produce an error, not a panic or success.
        prop_assert!(io::decode_binary(&bytes[..cut]).is_err());
    }

    #[test]
    fn bipartite_conversion_preserves_incidences((labels, edges) in hypergraph_parts()) {
        let h = build(&labels, &edges);
        let g = hgmatch_hypergraph::bipartite::BipartiteGraph::from_hypergraph(&h);
        prop_assert_eq!(g.num_vertex_nodes(), h.num_vertices());
        prop_assert_eq!(g.num_edge_nodes(), h.num_edges());
        let total: usize = (0..h.num_edges())
            .map(|e| h.edge_arity(hgmatch_hypergraph::EdgeId::from_index(e)))
            .sum();
        prop_assert_eq!(g.num_incidences(), total);
    }
}
