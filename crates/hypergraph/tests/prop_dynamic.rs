//! Differential property tests of the dynamic-update subsystem: random
//! interleaved insert/delete sequences on [`DynamicHypergraph`] must
//! produce snapshots — partitions, inverted indices with their bitmap
//! postings, locator, incidence CSR — equal in every field to a fresh
//! [`HypergraphBuilder`] build over the surviving hyperedges.
//!
//! Kernel modes: index construction is kernel-independent, but the CI
//! matrix replays this whole suite under `HGMATCH_FORCE_SCALAR=1` alongside
//! the core-level matching differentials, so a representation bug that only
//! bites one kernel family still fails the PR.

use hgmatch_datasets::testgen::TestRng;
use hgmatch_hypergraph::{
    env_shards, DynamicHypergraph, Hypergraph, HypergraphBuilder, Label, ShardedHypergraph,
};
use proptest::prelude::*;

/// The reference model: vertex labels plus live edges in (re-)insertion
/// order — exactly what a fresh build would consume.
struct Model {
    labels: Vec<Label>,
    live: Vec<Vec<u32>>,
}

impl Model {
    fn rebuild(&self) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &self.labels {
            b.add_vertex(l);
        }
        for e in &self.live {
            b.add_edge(e.clone()).expect("model edges are valid");
        }
        b.build().expect("model builds")
    }
}

/// Applies `ops` random operations, snapshotting along the way with
/// probability ~1/4 per op, and checks every snapshot (and the final one)
/// against the rebuild oracle.
fn run_case(seed: u64, nv: usize, nl: u64, ops: usize) -> Result<(), TestCaseError> {
    let mut rng = TestRng(seed);
    let mut model = Model {
        labels: (0..nv).map(|_| Label::new(rng.below(nl) as u32)).collect(),
        live: Vec::new(),
    };
    let mut dynamic = DynamicHypergraph::new();
    for &l in &model.labels {
        dynamic.add_vertex(l);
    }

    let mut snapshots_taken = 0usize;
    for _ in 0..ops {
        let delete = !model.live.is_empty() && rng.below(100) < 40;
        if delete {
            let idx = rng.below(model.live.len() as u64) as usize;
            let edge = model.live.remove(idx);
            let removed = dynamic.delete_hyperedge(&edge).expect("delete is Ok");
            prop_assert!(removed, "model edge {edge:?} must be live");
        } else {
            let arity = 1 + rng.below(4.min(nv as u64)) as usize;
            let mut edge: Vec<u32> = Vec::new();
            while edge.len() < arity {
                let v = rng.below(nv as u64) as u32;
                if !edge.contains(&v) {
                    edge.push(v);
                }
            }
            edge.sort_unstable();
            let duplicate = model.live.contains(&edge);
            let inserted = dynamic
                .insert_hyperedge(edge.clone())
                .expect("insert is Ok");
            prop_assert_eq!(
                inserted.is_some(),
                !duplicate,
                "dedupe must mirror the model for {:?}",
                &edge
            );
            if !duplicate {
                model.live.push(edge);
            }
        }

        if rng.below(100) < 25 {
            snapshots_taken += 1;
            let snap = dynamic.snapshot();
            assert_snapshot_matches(&snap.graph, &model)?;
        }
    }

    let snap = dynamic.snapshot();
    assert_snapshot_matches(&snap.graph, &model)?;
    prop_assert_eq!(snap.graph.num_edges(), model.live.len());
    // Republishing without mutations must be the identical Arc.
    let again = dynamic.snapshot();
    prop_assert!(std::sync::Arc::ptr_eq(&snap.graph, &again.graph));
    let _ = snapshots_taken;
    Ok(())
}

/// The sharded replay of [`run_case`]: the same random interleaved
/// insert/delete sequence fed to a [`ShardedHypergraph`] facade, whose
/// scatter-gather merged snapshots must equal both the rebuild oracle and
/// the monolithic [`DynamicHypergraph`] snapshot — the sharded==monolithic
/// differential of DESIGN.md §17 at the storage level.
fn run_sharded_case(
    seed: u64,
    nv: usize,
    nl: u64,
    ops: usize,
    num_shards: usize,
) -> Result<(), TestCaseError> {
    let mut rng = TestRng(seed);
    let mut model = Model {
        labels: (0..nv).map(|_| Label::new(rng.below(nl) as u32)).collect(),
        live: Vec::new(),
    };
    let mut mono = DynamicHypergraph::new();
    let mut sharded = ShardedHypergraph::new(num_shards);
    for &l in &model.labels {
        mono.add_vertex(l);
        sharded.add_vertex(l);
    }

    for _ in 0..ops {
        let delete = !model.live.is_empty() && rng.below(100) < 40;
        if delete {
            let idx = rng.below(model.live.len() as u64) as usize;
            let edge = model.live.remove(idx);
            prop_assert!(mono.delete_hyperedge(&edge).expect("delete is Ok"));
            prop_assert!(sharded.delete_hyperedge(&edge).expect("delete is Ok"));
        } else {
            let arity = 1 + rng.below(4.min(nv as u64)) as usize;
            let mut edge: Vec<u32> = Vec::new();
            while edge.len() < arity {
                let v = rng.below(nv as u64) as u32;
                if !edge.contains(&v) {
                    edge.push(v);
                }
            }
            edge.sort_unstable();
            let duplicate = model.live.contains(&edge);
            let a = mono.insert_hyperedge(edge.clone()).expect("insert is Ok");
            let b = sharded
                .insert_hyperedge(edge.clone())
                .expect("insert is Ok");
            prop_assert_eq!(a.is_some(), !duplicate);
            prop_assert_eq!(b, !duplicate);
            if !duplicate {
                model.live.push(edge);
            }
        }

        if rng.below(100) < 25 {
            let merged = sharded.snapshot();
            assert_snapshot_matches(&merged.graph, &model)?;
            prop_assert_eq!(&*merged.graph, &*mono.snapshot().graph);
        }
    }

    let merged = sharded.snapshot();
    assert_snapshot_matches(&merged.graph, &model)?;
    prop_assert_eq!(&*merged.graph, &*mono.snapshot().graph);
    prop_assert_eq!(sharded.num_edges(), model.live.len());
    // Republishing without mutations must be the identical Arc.
    let again = sharded.snapshot();
    prop_assert!(std::sync::Arc::ptr_eq(&merged.graph, &again.graph));
    Ok(())
}

/// Field-by-field equality of a snapshot against the rebuild oracle. The
/// top-level `PartialEq` covers everything; the per-partition assertions
/// exist to localise failures (and to state the acceptance criterion —
/// inverted indices *including bitmap postings* byte-equal — explicitly).
fn assert_snapshot_matches(snap: &Hypergraph, model: &Model) -> Result<(), TestCaseError> {
    let oracle = model.rebuild();
    prop_assert_eq!(snap.num_vertices(), oracle.num_vertices());
    prop_assert_eq!(snap.num_edges(), oracle.num_edges());
    prop_assert_eq!(snap.partitions().len(), oracle.partitions().len());
    for (got, want) in snap.partitions().iter().zip(oracle.partitions()) {
        prop_assert_eq!(got.signature(), want.signature());
        prop_assert_eq!(got.global_ids(), want.global_ids());
        // InvertedIndex PartialEq compares keys, offsets, postings, the
        // dense-key table and every bitmap — the byte-equivalence oracle.
        prop_assert_eq!(got.index(), want.index());
        prop_assert_eq!(got.index().num_dense_keys(), want.index().num_dense_keys());
    }
    prop_assert_eq!(snap, &oracle);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The acceptance oracle: ≥256 random interleaved insert/delete
    /// sequences, snapshot state identical to a from-scratch rebuild.
    #[test]
    fn interleaved_updates_match_rebuild(
        seed in 0u64..u64::MAX,
        nv in 2usize..14,
        nl in 1u64..4,
        ops in 1usize..48,
    ) {
        run_case(seed, nv, nl, ops)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Heavier sequences cross the bitmap-density and compaction
    /// thresholds: few vertices + many ops concentrate postings.
    #[test]
    fn dense_sequences_match_rebuild(
        seed in 0u64..u64::MAX,
        ops in 100usize..260,
    ) {
        run_case(seed, 6, 2, ops)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Sharded==monolithic: the same update stream through a sharded
    /// facade produces byte-equal merged snapshots for every shard count
    /// in {1, 2, 4} plus whatever `HGMATCH_SHARDS` the CI matrix exports.
    #[test]
    fn sharded_snapshots_match_rebuild(
        seed in 0u64..u64::MAX,
        nv in 2usize..14,
        nl in 1u64..4,
        ops in 1usize..48,
        shard_choice in 0usize..4,
    ) {
        let num_shards = [1, 2, 4, env_shards()][shard_choice];
        run_sharded_case(seed, nv, nl, ops, num_shards)?;
    }
}

/// Deterministic regression: a hub partition crossing MIN_BITMAP_ROWS and
/// then shrinking back below it, with snapshots on both sides.
#[test]
fn bitmap_threshold_crossing_round_trip() {
    let n = 400u32;
    let mut model = Model {
        labels: std::iter::once(Label::new(0))
            .chain(std::iter::repeat_n(Label::new(1), n as usize))
            .collect(),
        live: Vec::new(),
    };
    let mut dynamic = DynamicHypergraph::new();
    for &l in &model.labels {
        dynamic.add_vertex(l);
    }
    for leaf in 1..=n {
        dynamic.insert_hyperedge(vec![0, leaf]).unwrap();
        model.live.push(vec![0, leaf]);
    }
    let snap = dynamic.snapshot();
    assert_eq!(*snap.graph, model.rebuild());
    if hgmatch_hypergraph::inverted::forced_repr().is_none() {
        assert!(
            snap.graph
                .partition(hgmatch_hypergraph::SignatureId::new(0))
                .index()
                .num_dense_keys()
                > 0
        );
    }

    for leaf in 1..n {
        dynamic.delete_hyperedge(&[0, leaf]).unwrap();
    }
    model.live.retain(|e| e[1] == n);
    let snap = dynamic.snapshot();
    assert_eq!(*snap.graph, model.rebuild());
    if hgmatch_hypergraph::inverted::forced_repr().is_none() {
        assert_eq!(
            snap.graph
                .partition(hgmatch_hypergraph::SignatureId::new(0))
                .index()
                .num_dense_keys(),
            0
        );
    }
}

/// Deterministic regression for the three-way representation rule: a hub
/// key driven across *both* thresholds — list (< COMPRESSED_MIN_LEN rows),
/// then the compressed mid-density band (long posting, sparse in a diluted
/// row space), then dense enough for a bitmap — with a snapshot==rebuild
/// check at each stage, and back down via deletions.
#[test]
fn three_way_representation_thresholds_round_trip() {
    use hgmatch_hypergraph::inverted::{
        forced_repr, ReprKind, COMPRESSED_MIN_LEN, MIN_BITMAP_ROWS,
    };

    let hub_edges = 300u32;
    assert!(hub_edges as usize >= MIN_BITMAP_ROWS); // stage 2 reaches bitmap
    assert!(hub_edges as usize >= COMPRESSED_MIN_LEN); // stage 3 can compress
    let dilution = 32 * hub_edges; // pushes hub density below rows/32
    let mut model = Model {
        labels: Vec::new(),
        live: Vec::new(),
    };
    let mut dynamic = DynamicHypergraph::new();
    let add = |model: &mut Model, d: &mut DynamicHypergraph, l: u32| {
        model.labels.push(Label::new(l));
        d.add_vertex(Label::new(l));
        (model.labels.len() - 1) as u32
    };
    let hub = add(&mut model, &mut dynamic, 0);
    let leaves: Vec<u32> = (0..hub_edges)
        .map(|_| add(&mut model, &mut dynamic, 1))
        .collect();
    let xs: Vec<u32> = (0..98).map(|_| add(&mut model, &mut dynamic, 0)).collect();
    let ys: Vec<u32> = (0..98).map(|_| add(&mut model, &mut dynamic, 1)).collect();

    let hub_repr = |snap: &Hypergraph| {
        snap.partitions()
            .iter()
            .find(|p| !p.incident_posting(hub).is_empty())
            .map(|p| p.incident_posting(hub).repr())
    };
    let insert = |model: &mut Model, d: &mut DynamicHypergraph, e: Vec<u32>| {
        d.insert_hyperedge(e.clone()).unwrap();
        model.live.push(e);
    };

    // Stage 1: a handful of hub edges — plain list.
    for &leaf in &leaves[..8] {
        insert(&mut model, &mut dynamic, vec![hub, leaf]);
    }
    let snap = dynamic.snapshot();
    assert_eq!(*snap.graph, model.rebuild());
    if forced_repr().is_none() {
        assert_eq!(hub_repr(&snap.graph), Some(ReprKind::List));
    }

    // Stage 2: full hub posting — dense in the small partition: bitmap.
    for &leaf in &leaves[8..] {
        insert(&mut model, &mut dynamic, vec![hub, leaf]);
    }
    let snap = dynamic.snapshot();
    assert_eq!(*snap.graph, model.rebuild());
    if forced_repr().is_none() {
        assert_eq!(hub_repr(&snap.graph), Some(ReprKind::Bitmap));
    }

    // Stage 3: dilute the same partition with hub-free {0,1} edges until
    // the hub key sits in the mid-density band: compressed.
    let mut made = 0u32;
    'dilute: for &x in &xs {
        for &y in &ys {
            insert(&mut model, &mut dynamic, vec![x, y]);
            made += 1;
            if made == dilution {
                break 'dilute;
            }
        }
    }
    assert_eq!(made, dilution, "dilution pool too small");
    let snap = dynamic.snapshot();
    assert_eq!(*snap.graph, model.rebuild());
    if forced_repr().is_none() {
        assert_eq!(hub_repr(&snap.graph), Some(ReprKind::Compressed));
    }

    // Stage 4: delete hub edges back below COMPRESSED_MIN_LEN: list again.
    for &leaf in &leaves[8..] {
        assert!(dynamic.delete_hyperedge(&[hub, leaf]).unwrap());
    }
    model
        .live
        .retain(|e| e[0] != hub || leaves[..8].contains(&e[1]));
    let snap = dynamic.snapshot();
    assert_eq!(*snap.graph, model.rebuild());
    if forced_repr().is_none() {
        assert_eq!(hub_repr(&snap.graph), Some(ReprKind::List));
    }
}
