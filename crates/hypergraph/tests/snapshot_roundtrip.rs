//! Persistence differentials for the HGMB v2 snapshot format (DESIGN.md
//! §17): save→load over dynamic update streams must reproduce the exact
//! in-memory state, the encoding must be deterministic byte-for-byte, and
//! the committed golden fixture pins the on-disk layout so accidental
//! format drift fails CI (`UPDATE_GOLDEN=1` regenerates it deliberately).

use std::sync::Arc;

use hgmatch_datasets::testgen::random_arity_hypergraph;
use hgmatch_datasets::update_stream::{generate_update_stream, UpdateStreamConfig};
use hgmatch_hypergraph::io::{decode_snapshot, encode_snapshot, load_snapshot, save_snapshot};
use hgmatch_hypergraph::{
    DynamicHypergraph, Hypergraph, HypergraphBuilder, Label, ShardedHypergraph,
};

/// The deterministic fixture graph: the paper's Fig. 1b data graph plus a
/// hub block big enough that the adaptive index uses all three posting
/// representations (list / bitmap / compressed) — so the fixture pins the
/// serialisation of every representation, not just lists.
fn fixture_graph() -> Hypergraph {
    let mut b = HypergraphBuilder::new();
    for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
        b.add_vertex(Label::new(l));
    }
    b.add_edge(vec![2, 4]).unwrap();
    b.add_edge(vec![0, 1, 2]).unwrap();
    b.add_edge(vec![0, 1, 4, 6]).unwrap();

    // Hub block: vertex `hub` joins 300 two-vertex edges (bitmap-dense in
    // its partition), then 300 singleton edges dilute a second partition.
    let hub = b.add_vertex(Label::new(3)).raw();
    let first_leaf = b.add_vertices(600, Label::new(4)).raw();
    for leaf in first_leaf..first_leaf + 300 {
        b.add_edge(vec![hub, leaf]).unwrap();
    }
    for leaf in first_leaf + 300..first_leaf + 600 {
        b.add_edge(vec![leaf]).unwrap();
    }
    b.build().unwrap()
}

fn fixture_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/paper.hgsnap")
}

/// The committed fixture must decode, and re-encoding the decoded graph
/// must reproduce the file byte-for-byte: `save(load(fixture)) ==
/// fixture`. This half of the golden gate holds under any
/// `HGMATCH_FORCE_REPR`, because the decoder restores representations
/// verbatim instead of re-running the adaptive rule.
#[test]
fn golden_fixture_is_byte_stable() {
    let path = fixture_path();
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, encode_snapshot(&fixture_graph())).unwrap();
    }
    let fixture = std::fs::read(&path)
        .expect("missing tests/fixtures/paper.hgsnap; regenerate with UPDATE_GOLDEN=1");

    let decoded = decode_snapshot(&fixture).expect("committed fixture must decode");
    assert_eq!(
        &*encode_snapshot(&decoded),
        fixture.as_slice(),
        "save(load(fixture)) != fixture; the snapshot format drifted — \
         regenerate tests/fixtures/paper.hgsnap with UPDATE_GOLDEN=1 deliberately"
    );

    // A fresh build encodes to the same bytes — unless a forced
    // representation overrides the adaptive rule the fixture was built
    // under (the repr-stress CI leg), in which case only the verbatim
    // half above applies.
    if hgmatch_hypergraph::inverted::forced_repr().is_none() {
        assert_eq!(
            &*encode_snapshot(&fixture_graph()),
            fixture.as_slice(),
            "fresh fixture build no longer matches the committed snapshot"
        );
        assert_eq!(decoded, fixture_graph());
    }
}

/// Save→load→rebuild differential over a dynamic update stream: at every
/// checkpoint the decoded snapshot equals the in-memory snapshot field for
/// field (indices in their chosen representations, stats, locator, CSR),
/// and re-encoding it is byte-identical.
#[test]
fn snapshot_roundtrips_across_dynamic_streams() {
    let base = random_arity_hypergraph(11, 40, 60, 3, 1, 4);
    let ops = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops: 400,
            insert_ratio: 0.6,
            seed: 23,
            ..UpdateStreamConfig::default()
        },
    );
    let mut dynamic = DynamicHypergraph::from_hypergraph(&base);
    for (i, op) in ops.iter().enumerate() {
        dynamic.apply(op).expect("stream ops are valid");
        if i % 97 == 0 || i + 1 == ops.len() {
            let snap = dynamic.snapshot();
            let bytes = encode_snapshot(&snap.graph);
            let restored = decode_snapshot(&bytes).expect("snapshot must decode");
            assert_eq!(restored, *snap.graph, "decode lost state at op {i}");
            assert_eq!(
                encode_snapshot(&restored),
                bytes,
                "re-encode not byte-stable at op {i}"
            );
        }
    }
}

/// The same differential through the sharded facade and real files: a
/// sharded data plane's merged snapshot, saved and loaded per checkpoint,
/// must equal the monolithic graph fed the same stream.
#[test]
fn sharded_snapshot_files_match_monolithic() {
    let base = random_arity_hypergraph(5, 30, 40, 3, 1, 4);
    let ops = generate_update_stream(
        &base,
        &UpdateStreamConfig {
            ops: 200,
            insert_ratio: 0.65,
            seed: 41,
            ..UpdateStreamConfig::default()
        },
    );
    let dir = std::env::temp_dir().join("hgmatch-snapshot-roundtrip");
    std::fs::create_dir_all(&dir).unwrap();

    for num_shards in [1usize, 2, 4] {
        let mut mono = DynamicHypergraph::from_hypergraph(&base);
        let mut sharded = ShardedHypergraph::from_hypergraph(&base, num_shards).unwrap();
        for (i, op) in ops.iter().enumerate() {
            let a = mono.apply(op).expect("stream ops are valid");
            let b = sharded.apply(op).expect("stream ops are valid");
            assert_eq!(a, b, "shards diverged on op {i}");
            if i % 67 == 0 || i + 1 == ops.len() {
                let merged: Arc<Hypergraph> = sharded.snapshot().graph;
                let path = dir.join(format!("shard{num_shards}.hgsnap"));
                save_snapshot(&merged, &path).unwrap();
                let restored = load_snapshot(&path).unwrap();
                assert_eq!(restored, *mono.snapshot().graph);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
