//! Stats-maintenance differential harness (DESIGN.md §13.2): the
//! per-partition cardinality summaries ([`PartitionStats`]) are maintained
//! *incrementally* by [`DynamicHypergraph`] — O(1) integer bookkeeping per
//! posting edit, surviving tombstoning, threshold compaction and
//! copy-on-write snapshot reuse — and must stay **bit-equal** to
//! [`PartitionStats::recompute`] (the from-scratch oracle over the frozen
//! index) at every published snapshot.
//!
//! The main property interleaves insert/delete/compact/snapshot
//! operations over ≥ 256 random interleavings (a deterministic 256-seed
//! sweep plus a proptest layer on top) and checks every partition of every
//! snapshot, including snapshots whose partitions were Arc-reused from the
//! previous epoch.

use hgmatch_datasets::testgen::TestRng;
use hgmatch_hypergraph::{
    DynamicHypergraph, HypergraphBuilder, Label, PartitionStats, SignatureId,
};
use proptest::prelude::*;

/// Checks every partition of a snapshot against the recompute oracle.
fn assert_stats_bit_equal(graph: &hgmatch_hypergraph::Hypergraph, context: &str) {
    for (sid, partition) in graph.partitions().iter().enumerate() {
        let recomputed = PartitionStats::recompute(partition, graph.labels());
        assert_eq!(
            *partition.stats(),
            recomputed,
            "{context}: partition {sid} maintained stats diverge from recompute"
        );
        // Internal consistency: incidences = rows * arity summed over
        // labels (every row slot is one posting of one labelled vertex).
        let total: u64 = partition.stats().labels.iter().map(|g| g.incidences).sum();
        assert_eq!(
            total,
            partition.len() as u64 * partition.arity() as u64,
            "{context}: partition {sid} incidences must cover every row slot"
        );
    }
}

/// One random interleaving: `ops` insert/delete operations with ~25%
/// snapshot probability after each op, hub-skewed vertex picks so posting
/// lengths spread across histogram buckets.
fn run_case(seed: u64, nv: u64, nl: u64, ops: usize) {
    let mut rng = TestRng(seed);
    let mut dynamic = DynamicHypergraph::new();
    for _ in 0..nv {
        dynamic.add_vertex(Label::new(rng.below(nl) as u32));
    }
    let mut live: Vec<Vec<u32>> = Vec::new();
    let mut snapshots = 0usize;
    for _ in 0..ops {
        let delete = !live.is_empty() && rng.below(100) < 40;
        if delete {
            let idx = rng.below(live.len() as u64) as usize;
            let edge = live.swap_remove(idx);
            assert!(dynamic.delete_hyperedge(&edge).expect("delete Ok"));
        } else {
            let arity = 2 + rng.below(3) as usize;
            let mut edge: Vec<u32> = Vec::new();
            while edge.len() < arity {
                // Hub bias: half the picks land in the first few vertices,
                // building the long posting lists the histogram needs.
                let v = if rng.below(2) == 0 {
                    rng.below(4.min(nv))
                } else {
                    rng.below(nv)
                } as u32;
                if !edge.contains(&v) {
                    edge.push(v);
                }
            }
            if dynamic
                .insert_hyperedge(edge.clone())
                .expect("insert Ok")
                .is_some()
            {
                edge.sort_unstable();
                live.push(edge);
            }
        }
        if rng.below(100) < 25 {
            let snap = dynamic.snapshot();
            assert_stats_bit_equal(&snap.graph, &format!("seed {seed} mid-stream"));
            snapshots += 1;
        }
    }
    let snap = dynamic.snapshot();
    assert_stats_bit_equal(&snap.graph, &format!("seed {seed} final"));
    assert!(snapshots + 1 >= 1);
}

/// The acceptance sweep: 256 random interleavings, deterministic.
#[test]
fn incremental_stats_equal_recompute_across_256_interleavings() {
    for seed in 0..256u64 {
        run_case(seed, 24, 3, 90);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Proptest layer on top of the sweep: arbitrary seeds and shapes.
    #[test]
    fn incremental_stats_equal_recompute(
        seed in 0u64..1u64 << 48,
        nv in 6u64..40,
        ops in 20usize..160,
    ) {
        run_case(seed, nv, 4, ops);
    }
}

/// Deleting down a hub shrinks its degree through several histogram
/// buckets; the maintained histogram must track every transition
/// (including the posting-cell removal at degree 0).
#[test]
fn hub_shrink_tracks_histogram_buckets() {
    let mut d = DynamicHypergraph::new();
    d.add_vertex(Label::new(0)); // hub
    d.add_vertices(40, Label::new(1));
    for leaf in 1..=40u32 {
        d.insert_hyperedge(vec![0, leaf]).unwrap();
    }
    for kept in (1..=40u32).rev() {
        let snap = d.snapshot();
        assert_stats_bit_equal(&snap.graph, &format!("hub at degree {kept}"));
        let stats = snap.graph.partition(SignatureId::new(0)).stats();
        let hub = stats.label_group(Label::new(0)).expect("hub group");
        assert_eq!(hub.incidences, kept as u64);
        assert_eq!(hub.distinct_vertices, 1);
        assert_eq!(hub.sum_sq_degrees, (kept as u64) * (kept as u64));
        d.delete_hyperedge(&[0, kept]).unwrap();
    }
    // Hub fully unlinked: the label group disappears.
    let snap = d.snapshot();
    assert_eq!(snap.graph.num_edges(), 0);
    assert!(snap.graph.partitions().is_empty());
}

/// Snapshot partitions reused via Arc across epochs still carry correct
/// stats (the reuse path skips freeze entirely).
#[test]
fn arc_reused_partitions_keep_their_stats() {
    let mut d = DynamicHypergraph::new();
    d.add_vertices(4, Label::new(0));
    d.add_vertices(2, Label::new(1));
    d.insert_hyperedge(vec![0, 1]).unwrap(); // {0,0}
    d.insert_hyperedge(vec![0, 4]).unwrap(); // {0,1}
    let first = d.snapshot();
    // Touch only a new signature; the two existing partitions are reused.
    d.insert_hyperedge(vec![1, 2, 3]).unwrap();
    let second = d.snapshot();
    assert_stats_bit_equal(&second.graph, "after reuse");
    for sid in 0..2 {
        assert_eq!(
            first.graph.partition(SignatureId::new(sid)).stats(),
            second.graph.partition(SignatureId::new(sid)).stats(),
        );
    }
}

/// The static build path computes the same stats as the dynamic path for
/// the same content (a direct restatement of the snapshot == rebuild
/// oracle, focused on stats).
#[test]
fn static_build_and_dynamic_freeze_agree() {
    let mut d = DynamicHypergraph::new();
    let labels: Vec<Label> = [0u32, 1, 0, 2, 1, 0].map(Label::new).to_vec();
    for &l in &labels {
        d.add_vertex(l);
    }
    let edges = [
        vec![0, 1],
        vec![0, 2],
        vec![1, 3, 4],
        vec![2, 5],
        vec![0, 5],
    ];
    for e in &edges {
        d.insert_hyperedge(e.clone()).unwrap();
    }
    d.delete_hyperedge(&[0, 2]).unwrap();
    let snap = d.snapshot();

    let mut b = HypergraphBuilder::new();
    for &l in &labels {
        b.add_vertex(l);
    }
    for e in [vec![0, 1], vec![1, 3, 4], vec![2, 5], vec![0, 5]] {
        b.add_edge(e).unwrap();
    }
    let built = b.build().unwrap();
    assert_eq!(*snap.graph, built);
    for (sid, p) in built.partitions().iter().enumerate() {
        assert_eq!(
            p.stats(),
            snap.graph.partition(SignatureId::new(sid as u32)).stats()
        );
    }
}
