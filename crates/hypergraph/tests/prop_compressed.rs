//! Property-based tests of the delta-bitpacked posting containers
//! (DESIGN.md §14): encode/decode round-trips over adversarial value
//! distributions, fused-kernel agreement with the plain-list oracles, and
//! the three-way representation oracle — the same key forced into each of
//! list / bitmap / compressed must produce identical kernel outputs under
//! both kernel modes.

use std::collections::BTreeSet;

use hgmatch_hypergraph::compressed::{CompressedPostings, BLOCK_LEN};
use hgmatch_hypergraph::inverted::{set_forced_repr, ReprKind};
use hgmatch_hypergraph::setops::{self, KernelMode};
use hgmatch_hypergraph::{HypergraphBuilder, Label};
use proptest::prelude::*;

/// Adversarial sorted sets: dense runs, scattered singletons, maximum-gap
/// deltas at the ends of the `u32` domain, and values straddling block
/// boundaries — each case concatenates several such fragments (picked by
/// `kind`, parameterised by `seed`/`len`), deduplicated and sorted.
fn adversarial_sorted() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec((0u8..5, 0u32..u32::MAX, 1usize..BLOCK_LEN + 40), 1..6).prop_map(
        |frags| {
            let mut set: BTreeSet<u32> = BTreeSet::new();
            for (kind, seed, len) in frags {
                match kind {
                    // A consecutive run (packs to width 0).
                    0 => {
                        let start = seed % (1 << 20);
                        set.extend((0..len as u32).map(|i| start + i));
                    }
                    // Scattered singletons anywhere in the domain.
                    1 => {
                        let mut x = u64::from(seed) | 1;
                        for _ in 0..len.min(20) {
                            x = x
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            set.insert((x >> 32) as u32);
                        }
                    }
                    // Max-gap deltas: both ends of the domain in one block.
                    2 => set.extend([0, u32::MAX]),
                    3 => set.extend([0, 1, u32::MAX - 1, u32::MAX]),
                    // Values packed around a multiple of BLOCK_LEN.
                    _ => {
                        let b = (seed % 63 + 1) * BLOCK_LEN as u32;
                        set.extend([b - 2, b - 1, b, b + 1, b + 2]);
                    }
                }
            }
            set.into_iter().collect()
        },
    )
}

proptest! {
    #[test]
    fn encode_decode_round_trips(values in adversarial_sorted()) {
        let c = CompressedPostings::from_sorted(&values);
        prop_assert_eq!(c.len(), values.len());
        prop_assert_eq!(c.to_sorted(), values.clone());
        prop_assert_eq!(c.min(), values.first().copied());
        prop_assert_eq!(c.max(), values.last().copied());
    }

    #[test]
    fn contains_matches_membership(values in adversarial_sorted(), probes in proptest::collection::vec(0u32..u32::MAX, 1..40)) {
        let c = CompressedPostings::from_sorted(&values);
        let set: BTreeSet<u32> = values.iter().copied().collect();
        for &v in values.iter().take(16) {
            prop_assert!(c.contains(v));
        }
        for p in probes {
            prop_assert_eq!(c.contains(p), set.contains(&p));
        }
    }

    #[test]
    fn remove_round_trips_against_btreeset(
        values in adversarial_sorted(),
        picks in proptest::collection::vec(0usize..1_000_000, 1..30),
    ) {
        let mut c = CompressedPostings::from_sorted(&values);
        let mut oracle: BTreeSet<u32> = values.iter().copied().collect();
        for pick in picks {
            if oracle.is_empty() {
                break;
            }
            let v = *oracle.iter().nth(pick % oracle.len()).unwrap();
            prop_assert!(c.remove(v));
            oracle.remove(&v);
            prop_assert!(!c.remove(v), "double remove must miss");
        }
        let expected: Vec<u32> = oracle.into_iter().collect();
        prop_assert_eq!(c.to_sorted(), expected);
    }

    #[test]
    fn fused_kernels_match_list_oracles_in_both_modes(
        a in adversarial_sorted(),
        b in adversarial_sorted(),
    ) {
        let c = CompressedPostings::from_sorted(&a);
        let mut fused = Vec::new();
        for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
            setops::set_kernel_mode(mode);
            setops::intersect_compressed_into(&c, &b, &mut fused);
            prop_assert_eq!(&fused, &setops::intersect(&a, &b));
            setops::difference_compressed_list_into(&c, &b, &mut fused);
            prop_assert_eq!(&fused, &setops::difference(&a, &b));
            setops::difference_list_compressed_into(&b, &c, &mut fused);
            prop_assert_eq!(&fused, &setops::difference(&b, &a));
            prop_assert_eq!(setops::intersects_compressed(&c, &b), setops::intersects(&a, &b));
            prop_assert_eq!(setops::is_subset_compressed_list(&c, &b), setops::is_subset(&a, &b));
            prop_assert_eq!(setops::is_subset_list_compressed(&b, &c), setops::is_subset(&b, &a));
        }
        setops::set_kernel_mode(KernelMode::Auto);
    }
}

/// Builds one `{A,B}` partition whose hub key holds `posting` as its rows:
/// row `r` is the edge `{hub, leaf_r}`, plus filler edges so the partition
/// row space is `rows` — the hub's posting is then exactly `posting`.
fn partition_with_hub_posting(posting: &[u32], rows: u32) -> hgmatch_hypergraph::Hypergraph {
    assert!(!posting.is_empty() && posting[posting.len() - 1] < rows);
    let mut b = HypergraphBuilder::new();
    b.add_vertex(Label::new(0)); // hub
    b.add_vertex(Label::new(0)); // filler A vertex
    b.add_vertices(rows as usize, Label::new(1)); // one leaf per row
    let mut next = posting.iter().copied().peekable();
    for r in 0..rows {
        let a = if next.peek() == Some(&r) {
            next.next();
            0
        } else {
            1
        };
        b.add_edge(vec![a, 2 + r]).unwrap();
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The three-way representation oracle: the same key forced into each
    /// representation must give identical posting contents and identical
    /// fused/kernel outputs under both kernel modes.
    #[test]
    fn forced_representations_agree(
        posting in proptest::collection::btree_set(0u32..2_000, 1..400),
        other in proptest::collection::btree_set(0u32..2_000, 0..400),
    ) {
        let posting: Vec<u32> = posting.into_iter().collect();
        let other: Vec<u32> = other.into_iter().collect();
        let rows = 2_000u32;

        let mut decoded: Vec<Vec<u32>> = Vec::new();
        let mut intersected: Vec<Vec<u32>> = Vec::new();
        for repr in [ReprKind::List, ReprKind::Bitmap, ReprKind::Compressed] {
            set_forced_repr(Some(repr));
            let h = partition_with_hub_posting(&posting, rows);
            let p = h.partitions()[0].incident_posting(0);
            prop_assert_eq!(p.repr(), repr, "forced representation must stick");
            decoded.push(p.to_sorted());
            for mode in [KernelMode::Auto, KernelMode::ForceScalar] {
                setops::set_kernel_mode(mode);
                let mut out = Vec::new();
                match p {
                    hgmatch_hypergraph::Posting::Compressed(c) => {
                        setops::intersect_compressed_into(c, &other, &mut out);
                    }
                    _ => {
                        let list = p.as_list().unwrap();
                        setops::intersect_into(list, &other, &mut out);
                    }
                }
                intersected.push(out);
            }
        }
        set_forced_repr(None);
        setops::set_kernel_mode(KernelMode::Auto);

        for d in &decoded[1..] {
            prop_assert_eq!(d, &decoded[0], "decoded postings diverge across representations");
        }
        for i in &intersected[1..] {
            prop_assert_eq!(i, &intersected[0], "kernel outputs diverge across representations/modes");
        }
    }
}
