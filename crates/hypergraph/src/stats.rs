//! Summary statistics — the columns of the paper's Table II.

use serde::{Deserialize, Serialize};

use crate::hypergraph::Hypergraph;

/// Dataset statistics matching the paper's Table II, plus the index/table
/// sizes reported in Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypergraphStats {
    /// `|V|`
    pub num_vertices: usize,
    /// `|E|`
    pub num_edges: usize,
    /// `|Σ|` — distinct labels actually used.
    pub num_labels: usize,
    /// `a_max`
    pub max_arity: usize,
    /// `a` — average arity.
    pub avg_arity: f64,
    /// Number of signature partitions.
    pub num_partitions: usize,
    /// Bytes of hyperedge tables (graph size in Fig. 7).
    pub table_bytes: usize,
    /// Bytes of inverted indices (index size in Fig. 7).
    pub index_bytes: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
}

impl HypergraphStats {
    /// Computes statistics for `h`.
    pub fn compute(h: &Hypergraph) -> Self {
        let mut used = vec![false; h.num_labels()];
        for &l in h.labels() {
            used[l.index()] = true;
        }
        let num_labels = used.iter().filter(|&&u| u).count();
        let max_degree = (0..h.num_vertices())
            .map(|v| h.degree(crate::ids::VertexId::from_index(v)))
            .max()
            .unwrap_or(0);
        Self {
            num_vertices: h.num_vertices(),
            num_edges: h.num_edges(),
            num_labels,
            max_arity: h.max_arity(),
            avg_arity: h.average_arity(),
            num_partitions: h.partitions().len(),
            table_bytes: h.table_size_bytes(),
            index_bytes: h.index_size_bytes(),
            max_degree,
        }
    }

    /// One row of a Table II-style report.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name}\t{}\t{}\t{}\t{}\t{:.1}\t{}\t{}",
            self.num_vertices,
            self.num_edges,
            self.num_labels,
            self.max_arity,
            self.avg_arity,
            human_bytes(self.table_bytes),
            human_bytes(self.index_bytes),
        )
    }
}

/// Formats a byte count with binary units, as in the paper's Table II.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;
    use crate::ids::Label;

    #[test]
    fn stats_of_small_graph() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, Label::new(0));
        b.add_vertex(Label::new(5)); // alphabet spans 6 ids but only 2 used
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        let stats = b.build().unwrap().stats();
        assert_eq!(stats.num_vertices, 4);
        assert_eq!(stats.num_edges, 2);
        assert_eq!(stats.num_labels, 2);
        assert_eq!(stats.max_arity, 3);
        assert!((stats.avg_arity - 2.5).abs() < 1e-9);
        assert_eq!(stats.num_partitions, 2);
        assert_eq!(stats.max_degree, 2); // v2 in both edges
        assert!(stats.table_bytes > 0);
        assert!(stats.index_bytes > 0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0B");
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0MB");
    }

    #[test]
    fn table_row_contains_fields() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        let row = b.build().unwrap().stats().table_row("TEST");
        assert!(row.starts_with("TEST\t2\t1\t1\t2\t2.0"));
    }
}
