//! Summary statistics: the dataset columns of the paper's Table II, plus
//! the per-partition cardinality summaries the cost-based planner feeds on
//! (DESIGN.md §13).
//!
//! [`PartitionStats`] describes one signature partition: its row count and,
//! per vertex label of the signature, how many distinct data vertices of
//! that label occur in the partition and how their within-partition degrees
//! distribute (total incidences plus a log2-bucketed histogram). The
//! planner's cost model turns these into per-anchor selectivities — the
//! expected fraction of partition rows incident to a random matched vertex
//! of a given label.
//!
//! The summaries are **exact integer counts**, computed two ways that must
//! agree bit-for-bit:
//!
//! * the offline build recomputes them from the finished inverted index
//!   ([`PartitionStats::recompute`], used by [`crate::partition::Partition::new`]);
//! * the dynamic writer ([`crate::dynamic`]) maintains them incrementally —
//!   O(1) per posting edit — and snapshots emit the maintained values
//!   without recomputation.
//!
//! `Partition` equality covers its stats, so the dynamic differential
//! oracle (snapshot == rebuild-from-scratch) also proves the incremental
//! maintenance correct; `prop_stats.rs` asserts it directly.

use serde::{Deserialize, Serialize};

use crate::hypergraph::Hypergraph;
use crate::ids::Label;
use crate::partition::Partition;

/// Buckets of the per-label degree histogram: bucket `i` counts vertices
/// whose within-partition degree `d` has `⌊log2 d⌋ = i` (the last bucket
/// absorbs everything larger).
pub const DEGREE_HIST_BUCKETS: usize = 16;

/// Histogram bucket of a within-partition degree (`d ≥ 1`).
#[inline]
pub fn degree_bucket(degree: u64) -> usize {
    debug_assert!(degree >= 1, "vertices with zero postings are not counted");
    ((63 - degree.leading_zeros()) as usize).min(DEGREE_HIST_BUCKETS - 1)
}

/// Cardinality summary of one vertex label within one signature partition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelCardinality {
    /// The vertex label this group describes.
    pub label: Label,
    /// Distinct data vertices of this label occurring in the partition.
    pub distinct_vertices: u64,
    /// Total posting entries over those vertices — `Σ_v |he(v, s)|`.
    pub incidences: u64,
    /// Sum of squared within-partition degrees — `Σ_v |he(v, s)|²`. The
    /// second moment turns the plain mean into the *size-biased* mean the
    /// cost model needs: a vertex reached through a matched hyperedge is
    /// drawn proportionally to its degree, so its expected posting length
    /// is `Σd² / Σd`, not `Σd / n`.
    pub sum_sq_degrees: u64,
    /// log2-bucketed histogram of within-partition vertex degrees
    /// (see [`degree_bucket`]).
    pub degree_hist: [u64; DEGREE_HIST_BUCKETS],
}

impl LabelCardinality {
    /// Mean within-partition degree of this label's vertices — the cost
    /// model's expected posting length for an anchor of this label.
    #[inline]
    pub fn avg_degree(&self) -> f64 {
        if self.distinct_vertices == 0 {
            return 0.0;
        }
        self.incidences as f64 / self.distinct_vertices as f64
    }

    /// Expected posting length of a vertex of this label *reached through
    /// an incident hyperedge* (size-biased mean, `Σd²/Σd`). Hub-skewed
    /// labels have a much larger size-biased mean than plain mean — the
    /// signal the planner uses to avoid expanding through hubs.
    #[inline]
    pub fn size_biased_degree(&self) -> f64 {
        if self.incidences == 0 {
            return 0.0;
        }
        self.sum_sq_degrees as f64 / self.incidences as f64
    }

    /// Upper bound of the heaviest non-empty histogram bucket — a cheap
    /// stand-in for the maximum degree (exact max is not maintainable in
    /// O(1) under deletions).
    pub fn max_degree_bound(&self) -> u64 {
        for (i, &count) in self.degree_hist.iter().enumerate().rev() {
            if count > 0 {
                return if i == DEGREE_HIST_BUCKETS - 1 {
                    u64::MAX
                } else {
                    (2u64 << i) - 1
                };
            }
        }
        0
    }
}

/// Cardinality summary of one signature partition: the row count that
/// Algorithm 3 already used, extended with the per-label degree summaries
/// the cost model needs. Label groups are sorted by label and only cover
/// labels with at least one incidence.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionStats {
    /// Number of hyperedge rows (`Card(s, H)`).
    pub rows: u64,
    /// Per-label summaries, ascending by label.
    pub labels: Vec<LabelCardinality>,
}

impl PartitionStats {
    /// The summary for `label`, if any vertex of that label occurs.
    pub fn label_group(&self, label: Label) -> Option<&LabelCardinality> {
        self.labels
            .binary_search_by_key(&label, |g| g.label)
            .ok()
            .map(|i| &self.labels[i])
    }

    /// Recomputes the summary from a finished partition and the graph's
    /// vertex labels — the from-scratch oracle the incremental maintenance
    /// in [`crate::dynamic`] must agree with bit-for-bit.
    pub fn recompute(partition: &Partition, labels: &[Label]) -> Self {
        Self::recompute_from_index(partition.index(), partition.len(), labels)
    }

    /// The same summary computed straight from an inverted index and its
    /// row count — for callers that build the index before the partition
    /// exists (the sharded merge path, [`crate::sharded`]).
    pub(crate) fn recompute_from_index(
        index: &crate::inverted::InvertedIndex,
        rows: usize,
        labels: &[Label],
    ) -> Self {
        let mut groups: Vec<(Label, LabelCardinality)> = Vec::new();
        for (v, postings) in index.iter() {
            debug_assert!(!postings.is_empty(), "index keys carry postings");
            let label = labels[v as usize];
            let entry = match groups.binary_search_by_key(&label, |(l, _)| *l) {
                Ok(i) => &mut groups[i].1,
                Err(i) => {
                    groups.insert(
                        i,
                        (
                            label,
                            LabelCardinality {
                                label,
                                distinct_vertices: 0,
                                incidences: 0,
                                sum_sq_degrees: 0,
                                degree_hist: [0; DEGREE_HIST_BUCKETS],
                            },
                        ),
                    );
                    &mut groups[i].1
                }
            };
            let degree = postings.len() as u64;
            entry.distinct_vertices += 1;
            entry.incidences += degree;
            entry.sum_sq_degrees += degree * degree;
            entry.degree_hist[degree_bucket(degree)] += 1;
        }
        Self {
            rows: rows as u64,
            labels: groups.into_iter().map(|(_, g)| g).collect(),
        }
    }
}

/// Dataset statistics matching the paper's Table II, plus the index/table
/// sizes reported in Fig. 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypergraphStats {
    /// `|V|`
    pub num_vertices: usize,
    /// `|E|`
    pub num_edges: usize,
    /// `|Σ|` — distinct labels actually used.
    pub num_labels: usize,
    /// `a_max`
    pub max_arity: usize,
    /// `a` — average arity.
    pub avg_arity: f64,
    /// Number of signature partitions.
    pub num_partitions: usize,
    /// Bytes of hyperedge tables (graph size in Fig. 7).
    pub table_bytes: usize,
    /// Bytes of inverted indices (index size in Fig. 7).
    pub index_bytes: usize,
    /// Maximum vertex degree.
    pub max_degree: usize,
}

impl HypergraphStats {
    /// Computes statistics for `h`.
    pub fn compute(h: &Hypergraph) -> Self {
        let mut used = vec![false; h.num_labels()];
        for &l in h.labels() {
            used[l.index()] = true;
        }
        let num_labels = used.iter().filter(|&&u| u).count();
        let max_degree = (0..h.num_vertices())
            .map(|v| h.degree(crate::ids::VertexId::from_index(v)))
            .max()
            .unwrap_or(0);
        Self {
            num_vertices: h.num_vertices(),
            num_edges: h.num_edges(),
            num_labels,
            max_arity: h.max_arity(),
            avg_arity: h.average_arity(),
            num_partitions: h.partitions().len(),
            table_bytes: h.table_size_bytes(),
            index_bytes: h.index_size_bytes(),
            max_degree,
        }
    }

    /// One row of a Table II-style report.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name}\t{}\t{}\t{}\t{}\t{:.1}\t{}\t{}",
            self.num_vertices,
            self.num_edges,
            self.num_labels,
            self.max_arity,
            self.avg_arity,
            human_bytes(self.table_bytes),
            human_bytes(self.index_bytes),
        )
    }
}

/// Formats a byte count with binary units, as in the paper's Table II.
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;
    use crate::ids::Label;

    #[test]
    fn stats_of_small_graph() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, Label::new(0));
        b.add_vertex(Label::new(5)); // alphabet spans 6 ids but only 2 used
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![2, 3]).unwrap();
        let stats = b.build().unwrap().stats();
        assert_eq!(stats.num_vertices, 4);
        assert_eq!(stats.num_edges, 2);
        assert_eq!(stats.num_labels, 2);
        assert_eq!(stats.max_arity, 3);
        assert!((stats.avg_arity - 2.5).abs() < 1e-9);
        assert_eq!(stats.num_partitions, 2);
        assert_eq!(stats.max_degree, 2); // v2 in both edges
        assert!(stats.table_bytes > 0);
        assert!(stats.index_bytes > 0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(0), "0B");
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(5 * 1024 * 1024), "5.0MB");
    }

    #[test]
    fn table_row_contains_fields() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        let row = b.build().unwrap().stats().table_row("TEST");
        assert!(row.starts_with("TEST\t2\t1\t1\t2\t2.0"));
    }
}
