//! Error types for hypergraph construction and I/O.

use std::fmt;
use std::io;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, HypergraphError>;

/// Errors produced while building, loading or storing hypergraphs.
#[derive(Debug)]
pub enum HypergraphError {
    /// A hyperedge referenced a vertex id that was never declared.
    UnknownVertex { vertex: u32, edge_index: usize },
    /// A hyperedge was empty (hyperedges are non-empty subsets of V).
    EmptyHyperedge { edge_index: usize },
    /// The same hyperedge (as a vertex set) was inserted twice. The paper
    /// works on simple hypergraphs and pre-processes datasets to remove
    /// repeats; the builder can either reject or silently dedupe.
    DuplicateHyperedge { edge_index: usize },
    /// A vertex was declared more than once.
    DuplicateVertex { vertex: u32 },
    /// Parse error in a text-format file.
    Parse { line: usize, message: String },
    /// Binary input does not start with the `HGMB` magic bytes.
    BadMagic,
    /// Binary input declares a format version this build cannot decode.
    UnsupportedVersion(u32),
    /// A snapshot section (or the whole file) failed its CRC-32 check.
    ChecksumMismatch {
        /// Which section failed (`"file"` for the whole-file trailer).
        section: &'static str,
    },
    /// Binary format corruption.
    Corrupt(String),
    /// Underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownVertex { vertex, edge_index } => {
                write!(
                    f,
                    "hyperedge #{edge_index} references undeclared vertex {vertex}"
                )
            }
            Self::EmptyHyperedge { edge_index } => {
                write!(f, "hyperedge #{edge_index} is empty")
            }
            Self::DuplicateHyperedge { edge_index } => {
                write!(f, "hyperedge #{edge_index} duplicates an earlier hyperedge")
            }
            Self::DuplicateVertex { vertex } => {
                write!(f, "vertex {vertex} declared more than once")
            }
            Self::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            Self::BadMagic => write!(f, "not a hypergraph binary file (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported hypergraph binary version {v}")
            }
            Self::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in snapshot section {section:?}")
            }
            Self::Corrupt(msg) => write!(f, "corrupt binary hypergraph: {msg}"),
            Self::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HypergraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for HypergraphError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = HypergraphError::UnknownVertex {
            vertex: 9,
            edge_index: 2,
        };
        assert!(e.to_string().contains("undeclared vertex 9"));
        let e = HypergraphError::EmptyHyperedge { edge_index: 1 };
        assert!(e.to_string().contains("empty"));
        let e = HypergraphError::Parse {
            line: 3,
            message: "bad label".into(),
        };
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: HypergraphError = inner.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
