//! Dense bit-set posting representation (DESIGN.md §5.4).
//!
//! Posting lists over a partition's local row space are naturally bounded
//! (`0..rows`), so a dense partition can represent a posting set as one bit
//! per row. Set algebra then becomes word-wide bitwise operations — 64
//! elements per instruction, with none of the branch misprediction cost of
//! merge loops — which is exactly the "very efficient on modern hardware"
//! observation the paper makes about Algorithm 4's set operations.
//!
//! [`InvertedIndex`](crate::inverted::InvertedIndex) materialises a
//! `Bitmap` next to the sorted posting list for *dense* keys, and candidate
//! generation switches between the two representations per anchor based on
//! predicted cost (see `hgmatch-core`'s candidate generation and
//! DESIGN.md §5.5).

use serde::{Deserialize, Serialize};

/// A fixed-domain bit set over `0..domain` (local row ids).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    domain: u32,
}

impl Bitmap {
    /// Creates an empty bitmap over `0..domain`.
    pub fn new(domain: u32) -> Self {
        Self {
            words: vec![0; Self::words_for(domain)],
            domain,
        }
    }

    /// Builds a bitmap from a strictly sorted slice of ids `< domain`.
    pub fn from_sorted(list: &[u32], domain: u32) -> Self {
        let mut bm = Self::new(domain);
        bm.insert_list(list);
        bm
    }

    #[inline]
    fn words_for(domain: u32) -> usize {
        (domain as usize).div_ceil(64)
    }

    /// The domain size (exclusive upper bound of storable ids).
    #[inline]
    pub fn domain(&self) -> u32 {
        self.domain
    }

    /// Clears all bits, re-sizing the domain to `domain` but keeping the
    /// word allocation when possible. Intended for scratch reuse.
    pub fn reset(&mut self, domain: u32) {
        self.domain = domain;
        let words = Self::words_for(domain);
        self.words.clear();
        self.words.resize(words, 0);
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    /// Panics (debug) or is undefined-free but wrong (release: panics via
    /// slice indexing) when `i >= domain`.
    #[inline]
    pub fn insert(&mut self, i: u32) {
        debug_assert!(i < self.domain);
        self.words[(i >> 6) as usize] |= 1u64 << (i & 63);
    }

    /// Sets every bit of a sorted id list.
    #[inline]
    pub fn insert_list(&mut self, list: &[u32]) {
        for &i in list {
            self.insert(i);
        }
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    /// Panics when `i >= domain` (slice indexing).
    #[inline]
    pub fn remove(&mut self, i: u32) {
        debug_assert!(i < self.domain);
        self.words[(i >> 6) as usize] &= !(1u64 << (i & 63));
    }

    /// Grows the domain to `domain`, keeping every set bit. Growing is how
    /// a live posting bitmap follows its partition's row space as rows are
    /// appended ([`crate::dynamic`]); shrinking is a no-op.
    pub fn grow(&mut self, domain: u32) {
        if domain <= self.domain {
            return;
        }
        self.domain = domain;
        self.words.resize(Self::words_for(domain), 0);
    }

    /// Whether bit `i` is set.
    #[inline]
    pub fn contains(&self, i: u32) -> bool {
        debug_assert!(i < self.domain);
        self.words[(i >> 6) as usize] & (1u64 << (i & 63)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Word-wise OR of another bitmap over the same domain.
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn union_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.domain, other.domain, "bitmap domain mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Word-wise AND of another bitmap over the same domain.
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn intersect_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.domain, other.domain, "bitmap domain mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Word-wise AND-NOT (`self \ other`) over the same domain.
    ///
    /// # Panics
    /// Panics if the domains differ.
    pub fn difference_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.domain, other.domain, "bitmap domain mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// The backing words, 64 row-bits apiece (bit `i` lives at
    /// `words()[i >> 6] & (1 << (i & 63))`). Exposed so block-structured
    /// consumers (the reduce-then-scan extraction of `hgmatch-core::scan`)
    /// can popcount and decode word ranges without going through the
    /// per-bit API.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Takes the backing words out, leaving an empty zero-domain bitmap.
    /// Used to hand a dense candidate set to a shared parallel extraction
    /// without copying; the scratch bitmap re-grows on its next `reset`.
    pub fn take_words(&mut self) -> Vec<u64> {
        self.domain = 0;
        std::mem::take(&mut self.words)
    }

    /// Appends the set bits, ascending, to `out`.
    pub fn extract_into(&self, out: &mut Vec<u32>) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            let base = (wi as u32) << 6;
            while w != 0 {
                out.push(base + w.trailing_zeros());
                w &= w - 1;
            }
        }
    }

    /// The set bits as a fresh sorted vector.
    pub fn to_sorted(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones() as usize);
        self.extract_into(&mut out);
        out
    }

    /// Retains only the elements of `list` whose bit is set, preserving
    /// order — a list∩bitmap intersection without materialising the bitmap
    /// as a list.
    pub fn filter_list_into(&self, list: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.extend(list.iter().copied().filter(|&i| self.contains(i)));
    }

    /// Retains only the elements of `list` whose bit is *not* set
    /// (list \ bitmap), preserving order.
    pub fn filter_list_out(&self, list: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.extend(list.iter().copied().filter(|&i| !self.contains(i)));
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Appends the HGMB v2 wire encoding: domain, word count, words.
    pub(crate) fn encode_v2(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.domain);
        buf.put_u32_le(self.words.len() as u32);
        for &w in &self.words {
            buf.put_u64_le(w);
        }
    }

    /// Decodes the HGMB v2 wire encoding, advancing `data` past it. The
    /// word count must match the domain exactly — corrupt input errors,
    /// never panics.
    pub(crate) fn decode_v2(data: &mut &[u8]) -> crate::error::Result<Self> {
        use bytes::Buf;
        crate::io::need(data, 8, "bitmap header")?;
        let domain = data.get_u32_le();
        let num_words = data.get_u32_le() as usize;
        if num_words != Self::words_for(domain) {
            return Err(crate::error::HypergraphError::Corrupt(format!(
                "bitmap of domain {domain} claims {num_words} words"
            )));
        }
        let words = crate::io::read_u64s(data, num_words, "bitmap words")?;
        // Bits past the domain must be clear, or count_ones/extract would
        // disagree with the sorted-list side of a dense key.
        if !domain.is_multiple_of(64) {
            if let Some(&last) = words.last() {
                if last >> (domain % 64) != 0 {
                    return Err(crate::error::HypergraphError::Corrupt(
                        "bitmap has bits set past its domain".into(),
                    ));
                }
            }
        }
        Ok(Self { words, domain })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_extract() {
        let mut bm = Bitmap::new(200);
        for &i in &[0u32, 63, 64, 65, 127, 199] {
            bm.insert(i);
        }
        assert!(bm.contains(0) && bm.contains(63) && bm.contains(64));
        assert!(!bm.contains(1) && !bm.contains(128));
        assert_eq!(bm.count_ones(), 6);
        assert_eq!(bm.to_sorted(), vec![0, 63, 64, 65, 127, 199]);
    }

    #[test]
    fn from_sorted_roundtrips() {
        let list: Vec<u32> = (0..500).step_by(7).collect();
        let bm = Bitmap::from_sorted(&list, 500);
        assert_eq!(bm.to_sorted(), list);
    }

    #[test]
    fn set_algebra_matches_lists() {
        let a: Vec<u32> = (0..300).step_by(2).collect();
        let b: Vec<u32> = (0..300).step_by(3).collect();
        let mut ab = Bitmap::from_sorted(&a, 300);
        ab.intersect_assign(&Bitmap::from_sorted(&b, 300));
        assert_eq!(ab.to_sorted(), (0..300).step_by(6).collect::<Vec<u32>>());

        let mut u = Bitmap::from_sorted(&a, 300);
        u.union_assign(&Bitmap::from_sorted(&b, 300));
        assert_eq!(u.count_ones() as usize, {
            let mut all = a.clone();
            all.extend(&b);
            all.sort_unstable();
            all.dedup();
            all.len()
        });

        let mut d = Bitmap::from_sorted(&a, 300);
        d.difference_assign(&Bitmap::from_sorted(&b, 300));
        let expected: Vec<u32> = a.iter().copied().filter(|x| x % 3 != 0).collect();
        assert_eq!(d.to_sorted(), expected);
    }

    #[test]
    fn filters_preserve_order() {
        let bm = Bitmap::from_sorted(&[2, 4, 8], 10);
        let mut out = Vec::new();
        bm.filter_list_into(&[1, 2, 3, 4, 5, 8, 9], &mut out);
        assert_eq!(out, vec![2, 4, 8]);
        bm.filter_list_out(&[1, 2, 3, 4, 5, 8, 9], &mut out);
        assert_eq!(out, vec![1, 3, 5, 9]);
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut bm = Bitmap::new(1000);
        bm.insert(999);
        bm.reset(100);
        assert_eq!(bm.domain(), 100);
        assert!(bm.is_empty());
        bm.insert(99);
        assert_eq!(bm.count_ones(), 1);
    }

    #[test]
    fn empty_domain_is_fine() {
        let bm = Bitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.to_sorted(), Vec::<u32>::new());
        assert_eq!(bm.size_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn mismatched_domains_panic() {
        let mut a = Bitmap::new(64);
        a.union_assign(&Bitmap::new(65));
    }
}
