//! Delta-bitpacked block containers for mid-density postings (DESIGN.md §14).
//!
//! Raw sorted lists cost 4 bytes per posting; dense keys already switch to
//! [`Bitmap`](crate::bitmap::Bitmap)s, but the long mid-density tail — hub
//! vertices of big partitions that are nowhere near bitmap density — is
//! where index memory actually goes. This module stores such postings
//! Roaring-style: fixed-span blocks of up to [`BLOCK_LEN`] row ids, each
//! block holding its first value verbatim in a small header and the
//! remaining values as gap deltas (`v[i] - v[i-1] - 1`) bitpacked LSB-first
//! into `u64` words at the minimal width for that block. Pure runs pack to
//! width 0 (header only); a typical mid-density gap of ~32 rows packs to
//! ~6 bits/posting — a 5× reduction against the raw list.
//!
//! Decode never materialises the whole posting: the fused kernels in
//! [`crate::setops`] decode one block at a time into a stack-resident
//! `[u32; BLOCK_LEN]` scratch and run the ordinary SIMD/scalar set algebra
//! against the overlapping slice of the other operand, skipping blocks
//! whose `[min, max]` span cannot intersect it at all.
//!
//! Encoding is deterministic per block, but block *boundaries* drift under
//! in-place deletes (a spliced block keeps its shortened span). Canonical
//! boundaries are restored wherever byte-identity matters: the dynamic
//! index re-encodes from the sorted list at freeze time, so the
//! snapshot==rebuild oracle still compares canonical encodings.

use serde::{Deserialize, Serialize};

use crate::setops::is_strictly_sorted;

/// Maximum values per block, and the length of the decode scratch array.
pub const BLOCK_LEN: usize = 256;

/// Per-block metadata: the span for block skipping, the word offset of the
/// packed deltas, and the decode parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct BlockHeader {
    /// First value of the block, stored verbatim.
    base: u32,
    /// Last value of the block (inclusive), for skip checks without decode.
    max: u32,
    /// Index of the block's first word in `packed`.
    offset: u32,
    /// Values in the block (`1..=BLOCK_LEN`).
    count: u16,
    /// Bits per packed delta (`0..=32`); 0 means a pure run.
    width: u8,
}

impl BlockHeader {
    /// Words occupied by this block's packed deltas.
    #[inline]
    fn num_words(&self) -> usize {
        ((self.count as usize - 1) * self.width as usize).div_ceil(64)
    }
}

/// A sorted `u32` set stored as delta-bitpacked fixed-span blocks.
///
/// # Example
///
/// ```
/// use hgmatch_hypergraph::compressed::{CompressedPostings, BLOCK_LEN};
///
/// let values: Vec<u32> = (0..1000).map(|i| i * 3).collect();
/// let c = CompressedPostings::from_sorted(&values);
/// assert_eq!(c.len(), 1000);
/// assert_eq!(c.to_sorted(), values);
/// // Gap-2 deltas pack into 2 bits each: far below 4 bytes/posting.
/// assert!(c.size_bytes() * 3 < values.len() * 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedPostings {
    headers: Vec<BlockHeader>,
    packed: Vec<u64>,
    len: u32,
}

impl CompressedPostings {
    /// Encodes a strictly sorted slice, chunked into [`BLOCK_LEN`]-spans.
    pub fn from_sorted(values: &[u32]) -> Self {
        let mut c = Self::default();
        for chunk in values.chunks(BLOCK_LEN) {
            c.push_block(chunk);
        }
        c
    }

    /// Appends one block of up to [`BLOCK_LEN`] strictly sorted values, all
    /// greater than the current maximum.
    ///
    /// # Panics
    /// Panics (debug) when `values` is empty, oversized, unsorted, or does
    /// not extend the container.
    pub fn push_block(&mut self, values: &[u32]) {
        debug_assert!(!values.is_empty() && values.len() <= BLOCK_LEN);
        debug_assert!(is_strictly_sorted(values));
        debug_assert!(self.headers.last().is_none_or(|h| h.max < values[0]));
        let offset = self.packed.len() as u32;
        let header = encode_block(values, offset, &mut self.packed);
        self.headers.push(header);
        self.len += values.len() as u32;
    }

    /// Total number of stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no value is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.headers.len()
    }

    /// `(min, max)` span of block `i`, for skip checks without decoding.
    #[inline]
    pub fn block_range(&self, i: usize) -> (u32, u32) {
        let h = &self.headers[i];
        (h.base, h.max)
    }

    /// Number of values in block `i`.
    #[inline]
    pub fn block_len(&self, i: usize) -> usize {
        self.headers[i].count as usize
    }

    /// Whether block `i` is a pure run (width 0): it stores *every* integer
    /// in its `[min, max]` span. The fused kernels exploit this — set
    /// algebra against a contiguous range needs no decode at all.
    #[inline]
    pub fn block_is_run(&self, i: usize) -> bool {
        self.headers[i].width == 0
    }

    /// Smallest stored value, or `None` when empty.
    #[inline]
    pub fn min(&self) -> Option<u32> {
        self.headers.first().map(|h| h.base)
    }

    /// Largest stored value, or `None` when empty.
    #[inline]
    pub fn max(&self) -> Option<u32> {
        self.headers.last().map(|h| h.max)
    }

    /// Decodes block `i` into `scratch`, returning the decoded prefix.
    #[inline]
    pub fn decode_block<'s>(&self, i: usize, scratch: &'s mut [u32; BLOCK_LEN]) -> &'s [u32] {
        let h = &self.headers[i];
        let count = h.count as usize;
        scratch[0] = h.base;
        if h.width == 0 {
            // Pure run: values are consecutive.
            for (k, slot) in scratch[1..count].iter_mut().enumerate() {
                *slot = h.base + k as u32 + 1;
            }
        } else {
            let words = &self.packed[h.offset as usize..];
            unpack_deltas(h.width, words, h.base, &mut scratch[1..count]);
        }
        &scratch[..count]
    }

    /// Appends every stored value, ascending, to `out`.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        out.reserve(self.len());
        let mut scratch = [0u32; BLOCK_LEN];
        for i in 0..self.headers.len() {
            out.extend_from_slice(self.decode_block(i, &mut scratch));
        }
    }

    /// The stored values as a fresh sorted vector.
    pub fn to_sorted(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        self.decode_into(&mut out);
        out
    }

    /// Whether `v` is stored. One header binary search plus one block decode.
    pub fn contains(&self, v: u32) -> bool {
        let Some(i) = self.find_block(v) else {
            return false;
        };
        let mut scratch = [0u32; BLOCK_LEN];
        self.decode_block(i, &mut scratch).binary_search(&v).is_ok()
    }

    /// Index of the block whose span covers `v`, if any.
    #[inline]
    fn find_block(&self, v: u32) -> Option<usize> {
        let i = self.headers.partition_point(|h| h.max < v);
        (i < self.headers.len() && self.headers[i].base <= v).then_some(i)
    }

    /// Removes `v` if present, re-encoding only its block (block-local
    /// repack: later blocks shift their word offsets but are not touched).
    /// Returns whether the value was present. The deleted block's span
    /// shrinks in place, so boundaries may drift from a canonical
    /// [`from_sorted`](Self::from_sorted) encoding — see the module docs.
    pub fn remove(&mut self, v: u32) -> bool {
        let Some(i) = self.find_block(v) else {
            return false;
        };
        let mut scratch = [0u32; BLOCK_LEN];
        let decoded = self.decode_block(i, &mut scratch);
        let Ok(pos) = decoded.binary_search(&v) else {
            return false;
        };
        let count = decoded.len();
        scratch.copy_within(pos + 1..count, pos);

        let old = self.headers[i];
        let old_words = old.num_words();
        let start = old.offset as usize;
        let new_words = if count == 1 {
            // Block emptied: drop its header entirely.
            self.headers.remove(i);
            self.packed.drain(start..start + old_words);
            0
        } else {
            // Deleting can *grow* the width (two gaps merge into one), so
            // re-encode the survivors from scratch.
            let mut fresh = Vec::with_capacity(old_words);
            let header = encode_block(&scratch[..count - 1], old.offset, &mut fresh);
            let n = fresh.len();
            self.packed.splice(start..start + old_words, fresh);
            self.headers[i] = header;
            n
        };
        if new_words != old_words {
            let shift = old_words as i64 - new_words as i64;
            let tail = if count == 1 { i } else { i + 1 };
            for h in &mut self.headers[tail..] {
                h.offset = (h.offset as i64 - shift) as u32;
            }
        }
        self.len -= 1;
        true
    }

    /// Approximate heap size in bytes: packed words plus block headers.
    pub fn size_bytes(&self) -> usize {
        self.headers.len() * std::mem::size_of::<BlockHeader>()
            + self.packed.len() * std::mem::size_of::<u64>()
    }

    /// Appends the HGMB v2 wire encoding: block headers (field by field,
    /// fixed widths), packed words, total length.
    pub(crate) fn encode_v2(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.headers.len() as u32);
        for h in &self.headers {
            buf.put_u32_le(h.base);
            buf.put_u32_le(h.max);
            buf.put_u32_le(h.offset);
            buf.put_u16_le(h.count);
            buf.put_u8(h.width);
        }
        buf.put_u32_le(self.packed.len() as u32);
        for &w in &self.packed {
            buf.put_u64_le(w);
        }
        buf.put_u32_le(self.len);
    }

    /// Decodes the HGMB v2 wire encoding, advancing `data` past it. Every
    /// block invariant the decode kernels rely on (span ordering, word
    /// ranges, counts) is re-validated so corrupt input errors instead of
    /// panicking later inside `decode_block`.
    pub(crate) fn decode_v2(data: &mut &[u8]) -> crate::error::Result<Self> {
        use crate::error::HypergraphError;
        use bytes::Buf;
        let corrupt = |msg: &str| HypergraphError::Corrupt(format!("compressed posting: {msg}"));
        crate::io::need(data, 4, "compressed block count")?;
        let num_blocks = data.get_u32_le() as usize;
        crate::io::need(data, num_blocks * 15, "compressed block headers")?;
        let mut headers = Vec::with_capacity(num_blocks);
        for _ in 0..num_blocks {
            headers.push(BlockHeader {
                base: data.get_u32_le(),
                max: data.get_u32_le(),
                offset: data.get_u32_le(),
                count: data.get_u16_le(),
                width: data.get_u8(),
            });
        }
        crate::io::need(data, 4, "compressed word count")?;
        let num_words = data.get_u32_le() as usize;
        let packed = crate::io::read_u64s(data, num_words, "compressed packed words")?;
        crate::io::need(data, 4, "compressed length")?;
        let len = data.get_u32_le();

        let mut total = 0u64;
        let mut prev_max: Option<u32> = None;
        for h in &headers {
            if h.count == 0 || h.count as usize > BLOCK_LEN {
                return Err(corrupt("block count out of range"));
            }
            if h.width > 32 {
                return Err(corrupt("delta width out of range"));
            }
            if h.max < h.base {
                return Err(corrupt("block span inverted"));
            }
            if prev_max.is_some_and(|m| h.base <= m) {
                return Err(corrupt("block spans out of order"));
            }
            if h.offset as usize + h.num_words() > packed.len() {
                return Err(corrupt("block words out of range"));
            }
            prev_max = Some(h.max);
            total += h.count as u64;
        }
        if total != len as u64 {
            return Err(corrupt("length disagrees with block counts"));
        }
        Ok(Self {
            headers,
            packed,
            len,
        })
    }
}

/// Unpacks `out.len()` gap deltas of `width` bits from `words` and prefix-
/// sums them (`v[i] = v[i-1] + 1 + delta`) starting from `base`. Dispatches
/// to a monomorphised loop per width so the extraction arithmetic constant-
/// folds: the shift/mask schedule for a fixed width is periodic, which lets
/// the compiler unroll the hot loop and drop the cross-word branch wherever
/// `64 % width == 0`. The serial prefix-sum chain (1 add/value) remains —
/// that is the decode floor the fused kernels amortise via run blocks.
fn unpack_deltas(width: u8, words: &[u64], base: u32, out: &mut [u32]) {
    #[inline(always)]
    fn unpack<const W: u32>(words: &[u64], base: u32, out: &mut [u32]) {
        let mask = (1u64 << W) - 1;
        let mut prev = base;
        let mut bit = 0u32;
        for slot in out {
            let word = (bit >> 6) as usize;
            let sh = bit & 63;
            let mut d = words[word] >> sh;
            if sh + W > 64 {
                d |= words[word + 1] << (64 - sh);
            }
            prev = prev.wrapping_add(1).wrapping_add((d & mask) as u32);
            *slot = prev;
            bit += W;
        }
    }
    macro_rules! dispatch {
        ($($w:literal)+) => {
            match width {
                $($w => unpack::<$w>(words, base, out),)+
                _ => unreachable!("width is 1..=32"),
            }
        };
    }
    dispatch!(1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
              17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32)
}

/// Encodes one block's deltas into `packed` (appending whole words starting
/// at `offset`, which must be `packed.len()` on entry for appends) and
/// returns its header.
fn encode_block(values: &[u32], offset: u32, packed: &mut Vec<u64>) -> BlockHeader {
    let base = values[0];
    let max = *values.last().unwrap();
    let mut max_delta = 0u32;
    for w in values.windows(2) {
        max_delta = max_delta.max(w[1] - w[0] - 1);
    }
    let width = (32 - max_delta.leading_zeros()) as u8;
    let header = BlockHeader {
        base,
        max,
        offset,
        count: values.len() as u16,
        width,
    };
    let start = packed.len();
    packed.resize(start + header.num_words(), 0);
    if width > 0 {
        let words = &mut packed[start..];
        let mut bit = 0usize;
        for w in values.windows(2) {
            let d = (w[1] - w[0] - 1) as u64;
            let word = bit >> 6;
            let sh = bit & 63;
            words[word] |= d << sh;
            if sh + width as usize > 64 {
                words[word + 1] |= d >> (64 - sh);
            }
            bit += width as usize;
        }
    }
    header
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[u32]) {
        let c = CompressedPostings::from_sorted(values);
        assert_eq!(c.len(), values.len());
        assert_eq!(
            c.to_sorted(),
            values,
            "roundtrip of {} values",
            values.len()
        );
    }

    #[test]
    fn empty_and_singleton() {
        let c = CompressedPostings::from_sorted(&[]);
        assert!(c.is_empty());
        assert_eq!(c.num_blocks(), 0);
        assert_eq!(c.to_sorted(), Vec::<u32>::new());
        roundtrip(&[0]);
        roundtrip(&[u32::MAX]);
    }

    #[test]
    fn runs_pack_to_width_zero() {
        let values: Vec<u32> = (10..10 + 600).collect();
        let c = CompressedPostings::from_sorted(&values);
        assert_eq!(c.to_sorted(), values);
        // Three blocks of consecutive values: headers only, no packed words.
        assert_eq!(c.num_blocks(), 3);
        assert_eq!(c.size_bytes(), 3 * std::mem::size_of::<BlockHeader>());
    }

    #[test]
    fn block_boundaries_roundtrip() {
        for n in [255usize, 256, 257, 511, 512, 513] {
            let values: Vec<u32> = (0..n as u32).map(|i| i * 7 + 3).collect();
            roundtrip(&values);
        }
    }

    #[test]
    fn max_gap_deltas_roundtrip() {
        // 32-bit-wide deltas, including values at the domain edges.
        roundtrip(&[0, 1, u32::MAX - 1, u32::MAX]);
        roundtrip(&[5, 1 << 31, u32::MAX]);
        let mut mixed = vec![0u32];
        let mut v = 0u32;
        for (i, gap) in [1u32, 1 << 20, 2, 1 << 30, 3, 1, 1 << 10]
            .iter()
            .enumerate()
        {
            v += gap + (i as u32 % 2);
            mixed.push(v);
        }
        roundtrip(&mixed);
    }

    #[test]
    fn contains_finds_exactly_members() {
        let values: Vec<u32> = (0..900u32).map(|i| i * 5).collect();
        let c = CompressedPostings::from_sorted(&values);
        for &v in &values {
            assert!(c.contains(v));
        }
        for v in [1u32, 4, 2501, 4496, 4500] {
            assert!(!c.contains(v), "{v} should be absent");
        }
    }

    #[test]
    fn remove_matches_list_semantics() {
        let values: Vec<u32> = (0..700u32).map(|i| i * 3 + 1).collect();
        let mut c = CompressedPostings::from_sorted(&values);
        let mut model = values.clone();
        // Remove from the front, middle, a block boundary, and the back.
        for v in [1u32, 1000, 255 * 3 + 1, 256 * 3 + 1, 699 * 3 + 1, 0] {
            let expected = model.binary_search(&v).map(|p| model.remove(p)).is_ok();
            assert_eq!(c.remove(v), expected, "remove({v})");
            assert_eq!(c.to_sorted(), model);
        }
    }

    #[test]
    fn remove_can_grow_block_width() {
        // A pure run (width 0): deleting an interior value creates a gap,
        // forcing the block to repack at width 1.
        let values: Vec<u32> = (0..100).collect();
        let mut c = CompressedPostings::from_sorted(&values);
        assert_eq!(c.size_bytes(), std::mem::size_of::<BlockHeader>());
        assert!(c.remove(50));
        let expected: Vec<u32> = values.iter().copied().filter(|&v| v != 50).collect();
        assert_eq!(c.to_sorted(), expected);
        assert!(c.size_bytes() > std::mem::size_of::<BlockHeader>());
    }

    #[test]
    fn remove_drains_whole_container() {
        let values: Vec<u32> = (0..520u32).map(|i| i * 2).collect();
        let mut c = CompressedPostings::from_sorted(&values);
        for &v in values.iter().rev() {
            assert!(c.remove(v));
            assert!(!c.remove(v), "double remove of {v}");
        }
        assert!(c.is_empty());
        assert_eq!(c.num_blocks(), 0);
        assert!(c.packed.is_empty());
    }

    #[test]
    fn mid_density_beats_raw_lists_3x() {
        // Average gap 32 over a 256k-row space: the acceptance-criteria
        // shape. 13 gap bits would be pathological; typical is ~5-6.
        let values: Vec<u32> = (0..8192u32).map(|i| i * 32 + (i % 7)).collect();
        let c = CompressedPostings::from_sorted(&values);
        assert_eq!(c.to_sorted(), values);
        let raw = values.len() * 4;
        assert!(
            c.size_bytes() * 3 <= raw,
            "compressed {} vs raw {} bytes",
            c.size_bytes(),
            raw
        );
    }

    #[test]
    fn push_block_appends_in_order() {
        let mut c = CompressedPostings::default();
        c.push_block(&[3, 9, 10]);
        c.push_block(&[20]);
        let tail: Vec<u32> = (100..356).collect();
        c.push_block(&tail);
        assert_eq!(c.num_blocks(), 3);
        let mut expected = vec![3, 9, 10, 20];
        expected.extend(tail);
        assert_eq!(c.to_sorted(), expected);
        assert_eq!(c.block_range(1), (20, 20));
    }
}
