//! Signature-partitioned hyperedge tables (paper §IV-B, Table I).
//!
//! All data hyperedges sharing one signature live in one `Partition`: a CSR
//! table of sorted vertex lists plus the partition's [`InvertedIndex`]. The
//! row count of the table *is* the hyperedge cardinality `Card(eq, H)` used
//! by the matching-order planner (Definition V.2), available in `O(1)`.

use serde::{Deserialize, Serialize};

use crate::ids::{EdgeId, Label, SignatureId};
use crate::inverted::InvertedIndex;
use crate::stats::PartitionStats;

/// One hyperedge table: every hyperedge in it has the same signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    signature: SignatureId,
    /// Arity shared by all rows (signatures fix the arity).
    arity: u32,
    /// Flattened sorted vertex lists; row `r` is
    /// `vertices[r*arity..(r+1)*arity]`.
    vertices: Vec<u32>,
    /// Global edge id of each local row.
    global_ids: Vec<EdgeId>,
    /// vertex → sorted local rows.
    index: InvertedIndex,
    /// Cardinality summaries for the cost-based planner (DESIGN.md §13).
    /// Covered by `PartialEq`, so the dynamic snapshot-vs-rebuild oracle
    /// also proves the incremental stats maintenance.
    stats: PartitionStats,
}

impl Partition {
    /// Assembles a partition from rows of sorted vertex lists and their
    /// global ids, building the inverted index and computing the planner's
    /// cardinality summaries from `labels` (the graph's vertex labels).
    ///
    /// # Panics
    /// Panics if any row's length differs from `arity`, or if row vertex
    /// lists are not strictly sorted (debug builds).
    pub fn new(
        signature: SignatureId,
        arity: u32,
        rows: Vec<Vec<u32>>,
        global_ids: Vec<EdgeId>,
        labels: &[Label],
    ) -> Self {
        assert_eq!(
            rows.len(),
            global_ids.len(),
            "rows and global ids must align"
        );
        let mut vertices = Vec::with_capacity(rows.len() * arity as usize);
        for row in &rows {
            assert_eq!(row.len(), arity as usize, "row arity mismatch");
            debug_assert!(
                crate::setops::is_strictly_sorted(row),
                "row vertex lists must be sorted and duplicate-free"
            );
            vertices.extend_from_slice(row);
        }
        let row_slices: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let index = InvertedIndex::build(&row_slices);
        let mut partition = Self {
            signature,
            arity,
            vertices,
            global_ids,
            index,
            stats: PartitionStats::default(),
        };
        partition.stats = PartitionStats::recompute(&partition, labels);
        partition
    }

    /// Assembles a partition from already-flattened parts, a prebuilt
    /// index and incrementally maintained stats — the dynamic snapshot's
    /// freeze path ([`crate::dynamic`]), which must not rebuild either.
    pub(crate) fn from_parts(
        signature: SignatureId,
        arity: u32,
        vertices: Vec<u32>,
        global_ids: Vec<EdgeId>,
        index: InvertedIndex,
        stats: PartitionStats,
    ) -> Self {
        debug_assert_eq!(vertices.len(), global_ids.len() * arity as usize);
        Self {
            signature,
            arity,
            vertices,
            global_ids,
            index,
            stats,
        }
    }

    /// The signature id all rows in this partition share.
    #[inline]
    pub fn signature(&self) -> SignatureId {
        self.signature
    }

    /// Arity of every hyperedge in this partition.
    #[inline]
    pub fn arity(&self) -> u32 {
        self.arity
    }

    /// Number of hyperedges — the `O(1)` cardinality used by the planner.
    #[inline]
    pub fn len(&self) -> usize {
        self.global_ids.len()
    }

    /// Whether the partition holds no hyperedges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.global_ids.is_empty()
    }

    /// Sorted vertex list of local row `row`.
    #[inline]
    pub fn row(&self, row: u32) -> &[u32] {
        let a = self.arity as usize;
        let start = row as usize * a;
        &self.vertices[start..start + a]
    }

    /// Global edge id of local row `row`.
    #[inline]
    pub fn global_id(&self, row: u32) -> EdgeId {
        self.global_ids[row as usize]
    }

    /// All global ids, indexed by local row.
    #[inline]
    pub fn global_ids(&self) -> &[EdgeId] {
        &self.global_ids
    }

    /// The partition's inverted hyperedge index.
    #[inline]
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The flattened vertex table (`len * arity` sorted lists back to
    /// back) — the serialisation path writes it verbatim.
    #[inline]
    pub(crate) fn raw_vertices(&self) -> &[u32] {
        &self.vertices
    }

    /// The planner's cardinality summaries for this partition
    /// ([`PartitionStats`], DESIGN.md §13).
    #[inline]
    pub fn stats(&self) -> &PartitionStats {
        &self.stats
    }

    /// Posting set of local rows incident to `vertex` — `he(v, s)` for this
    /// partition's signature `s` — in whichever representation the index
    /// chose (sorted list, bitmap-augmented list, or delta-bitpacked
    /// blocks); Algorithm 4 dispatches on it to pick the cheapest kernel.
    #[inline]
    pub fn incident_posting(&self, vertex: u32) -> crate::inverted::Posting<'_> {
        self.index.posting(vertex)
    }

    /// Iterates `(local row, vertex list)` pairs.
    pub fn iter_rows(&self) -> impl Iterator<Item = (u32, &[u32])> {
        (0..self.len() as u32).map(move |r| (r, self.row(r)))
    }

    /// Approximate heap size of the table (vertex lists + global ids),
    /// excluding the inverted index.
    pub fn table_size_bytes(&self) -> usize {
        self.vertices.len() * std::mem::size_of::<u32>()
            + self.global_ids.len() * std::mem::size_of::<EdgeId>()
    }

    /// Approximate heap size of the inverted index.
    pub fn index_size_bytes(&self) -> usize {
        self.index.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Labels of the paper's Fig. 1b data graph (A=0, B=1, C=2).
    fn sample_labels() -> Vec<Label> {
        [0u32, 2, 0, 0, 1, 2, 0].map(Label::new).to_vec()
    }

    fn sample() -> Partition {
        // Partition 3 of the paper's Table I: signature {A,A,B,C};
        // e5 = {v0,v1,v4,v6}, e6 = {v2,v3,v4,v5}.
        Partition::new(
            SignatureId::new(2),
            4,
            vec![vec![0, 1, 4, 6], vec![2, 3, 4, 5]],
            vec![EdgeId::new(4), EdgeId::new(5)],
            &sample_labels(),
        )
    }

    #[test]
    fn rows_and_globals() {
        let p = sample();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.arity(), 4);
        assert_eq!(p.row(0), &[0, 1, 4, 6]);
        assert_eq!(p.row(1), &[2, 3, 4, 5]);
        assert_eq!(p.global_id(0), EdgeId::new(4));
        assert_eq!(p.global_id(1), EdgeId::new(5));
    }

    #[test]
    fn incident_postings_match_paper_table() {
        let p = sample();
        assert_eq!(p.incident_posting(0).to_sorted(), vec![0]);
        assert_eq!(p.incident_posting(4).to_sorted(), vec![0, 1]); // v4 → [e5, e6]
        assert_eq!(p.incident_posting(5).to_sorted(), vec![1]);
        assert!(p.incident_posting(7).is_empty());
    }

    #[test]
    fn iter_rows_covers_table() {
        let p = sample();
        let rows: Vec<u32> = p.iter_rows().map(|(r, _)| r).collect();
        assert_eq!(rows, vec![0, 1]);
    }

    #[test]
    fn sizes_are_positive() {
        let p = sample();
        assert_eq!(p.table_size_bytes(), (8 + 2) * 4);
        assert!(p.index_size_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let _ = Partition::new(
            SignatureId::new(0),
            3,
            vec![vec![0, 1]],
            vec![EdgeId::new(0)],
            &sample_labels(),
        );
    }

    #[test]
    #[should_panic(expected = "rows and global ids")]
    fn misaligned_ids_panic() {
        let _ = Partition::new(
            SignatureId::new(0),
            1,
            vec![vec![0]],
            vec![],
            &sample_labels(),
        );
    }

    #[test]
    fn stats_summarise_labels_and_degrees() {
        use crate::stats::DEGREE_HIST_BUCKETS;
        let p = sample();
        let s = p.stats();
        assert_eq!(s.rows, 2);
        // Labels present: A (v0..v3, v6 subset), B (v4), C (v1, v5).
        let labels: Vec<u32> = s.labels.iter().map(|g| g.label.raw()).collect();
        assert_eq!(labels, vec![0, 1, 2]);
        // A: v0, v1? no — v1 is C. A-vertices here: v0, v2, v3, v6, each in
        // one row — 4 distinct, 4 incidences, all in bucket 0.
        let a = s.label_group(Label::new(0)).unwrap();
        assert_eq!((a.distinct_vertices, a.incidences), (4, 4));
        assert_eq!(a.degree_hist[0], 4);
        // B: v4 in both rows — degree 2, bucket 1.
        let b = s.label_group(Label::new(1)).unwrap();
        assert_eq!((b.distinct_vertices, b.incidences), (1, 2));
        assert_eq!(b.degree_hist[1], 1);
        assert!((b.avg_degree() - 2.0).abs() < 1e-12);
        assert_eq!(b.max_degree_bound(), 3);
        // Absent label has no group.
        assert!(s.label_group(Label::new(9)).is_none());
        // Equality with the recompute oracle is definitional here.
        assert_eq!(
            *s,
            crate::stats::PartitionStats::recompute(&p, &sample_labels())
        );
        let _ = DEGREE_HIST_BUCKETS;
    }
}
