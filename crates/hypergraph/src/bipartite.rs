//! Hypergraph → incidence bipartite graph conversion (paper §I, Fig. 2).
//!
//! The "strawman" approach to subhypergraph matching converts the hypergraph
//! into a bipartite graph whose upper side is the hyperedges and lower side
//! the vertices, with an edge whenever vertex ∈ hyperedge. The paper uses
//! this conversion for the RapidMatch baseline; we build it as a substrate
//! for the `rapid` baseline crate and to demonstrate the size inflation the
//! paper warns about.

use crate::hypergraph::Hypergraph;
use crate::ids::{EdgeId, Label, VertexId};

/// A labelled bipartite graph in CSR form.
///
/// Nodes `0..num_vertex_nodes` are the original vertices (labelled with
/// their vertex labels); nodes `num_vertex_nodes..num_nodes` are the original
/// hyperedges (labelled by arity, offset past the vertex alphabet so the two
/// sides can never be confused by label).
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    num_vertex_nodes: usize,
    labels: Vec<u32>,
    offsets: Vec<u64>,
    neighbors: Vec<u32>,
}

impl BipartiteGraph {
    /// Converts `h` into its incidence bipartite graph.
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        let nv = h.num_vertices();
        let ne = h.num_edges();
        let sigma = h.num_labels() as u32;

        let mut labels = Vec::with_capacity(nv + ne);
        labels.extend(h.labels().iter().map(|l| l.raw()));
        // Hyperedge nodes are labelled `sigma + arity` so arity mismatches
        // are label mismatches for any bipartite matcher.
        labels.extend((0..ne).map(|e| sigma + h.edge_arity(EdgeId::from_index(e)) as u32));

        let mut offsets = Vec::with_capacity(nv + ne + 1);
        offsets.push(0u64);
        // Vertex side: neighbours are hyperedge nodes.
        for v in 0..nv {
            let deg = h.degree(VertexId::from_index(v)) as u64;
            offsets.push(offsets.last().unwrap() + deg);
        }
        // Hyperedge side: neighbours are member vertices.
        for e in 0..ne {
            let a = h.edge_arity(EdgeId::from_index(e)) as u64;
            offsets.push(offsets.last().unwrap() + a);
        }

        let total = *offsets.last().unwrap() as usize;
        let mut neighbors = vec![0u32; total];
        for (v, &offset) in offsets.iter().take(nv).enumerate() {
            let start = offset as usize;
            for (i, &e) in h.incident_edges(VertexId::from_index(v)).iter().enumerate() {
                neighbors[start + i] = nv as u32 + e;
            }
        }
        for e in 0..ne {
            let start = offsets[nv + e] as usize;
            for (i, &v) in h.edge_vertices(EdgeId::from_index(e)).iter().enumerate() {
                neighbors[start + i] = v;
            }
        }

        Self {
            num_vertex_nodes: nv,
            labels,
            offsets,
            neighbors,
        }
    }

    /// Total node count (vertices + hyperedges).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Number of nodes on the vertex side.
    #[inline]
    pub fn num_vertex_nodes(&self) -> usize {
        self.num_vertex_nodes
    }

    /// Number of nodes on the hyperedge side.
    #[inline]
    pub fn num_edge_nodes(&self) -> usize {
        self.labels.len() - self.num_vertex_nodes
    }

    /// Number of (undirected) incidence edges.
    #[inline]
    pub fn num_incidences(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Label of node `n`.
    #[inline]
    pub fn label(&self, n: u32) -> u32 {
        self.labels[n as usize]
    }

    /// Sorted neighbours of node `n`.
    #[inline]
    pub fn neighbors(&self, n: u32) -> &[u32] {
        let start = self.offsets[n as usize] as usize;
        let end = self.offsets[n as usize + 1] as usize;
        &self.neighbors[start..end]
    }

    /// Degree of node `n`.
    #[inline]
    pub fn degree(&self, n: u32) -> usize {
        (self.offsets[n as usize + 1] - self.offsets[n as usize]) as usize
    }

    /// Whether node `n` is on the hyperedge side.
    #[inline]
    pub fn is_edge_node(&self, n: u32) -> bool {
        n as usize >= self.num_vertex_nodes
    }

    /// Maps a hyperedge-side node back to the original hyperedge id.
    #[inline]
    pub fn edge_of_node(&self, n: u32) -> EdgeId {
        debug_assert!(self.is_edge_node(n));
        EdgeId::new(n - self.num_vertex_nodes as u32)
    }

    /// Maps a vertex-side node back to the original vertex id.
    #[inline]
    pub fn vertex_of_node(&self, n: u32) -> VertexId {
        debug_assert!(!self.is_edge_node(n));
        VertexId::new(n)
    }

    /// Original vertex label of a vertex-side node.
    #[inline]
    pub fn vertex_label(&self, n: u32) -> Label {
        Label::new(self.labels[n as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;
    use crate::ids::Label;

    fn small() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0)); // v0 A
        b.add_vertex(Label::new(1)); // v1 B
        b.add_vertex(Label::new(0)); // v2 A
        b.add_edge(vec![0, 1]).unwrap(); // e0
        b.add_edge(vec![0, 1, 2]).unwrap(); // e1
        b.build().unwrap()
    }

    #[test]
    fn node_counts_and_sides() {
        let g = BipartiteGraph::from_hypergraph(&small());
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_vertex_nodes(), 3);
        assert_eq!(g.num_edge_nodes(), 2);
        assert_eq!(g.num_incidences(), 5); // 2 + 3 memberships
        assert!(!g.is_edge_node(2));
        assert!(g.is_edge_node(3));
        assert_eq!(g.edge_of_node(3), EdgeId::new(0));
        assert_eq!(g.vertex_of_node(1), VertexId::new(1));
    }

    #[test]
    fn adjacency_is_symmetric_incidence() {
        let g = BipartiteGraph::from_hypergraph(&small());
        // v0 ∈ e0, e1 → neighbours are edge nodes 3 and 4.
        assert_eq!(g.neighbors(0), &[3, 4]);
        // e1 node (index 4) has the member vertices.
        assert_eq!(g.neighbors(4), &[0, 1, 2]);
        assert_eq!(g.degree(4), 3);
    }

    #[test]
    fn labels_separate_sides() {
        let h = small();
        let g = BipartiteGraph::from_hypergraph(&h);
        let sigma = h.num_labels() as u32;
        assert_eq!(g.label(0), 0);
        assert_eq!(g.label(1), 1);
        // Edge nodes labelled sigma + arity.
        assert_eq!(g.label(3), sigma + 2);
        assert_eq!(g.label(4), sigma + 3);
        assert_eq!(g.vertex_label(2), Label::new(0));
    }

    #[test]
    fn empty_graph_converts() {
        let h = HypergraphBuilder::new().build().unwrap();
        let g = BipartiteGraph::from_hypergraph(&h);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_incidences(), 0);
    }
}
