//! Sorted-set algebra over `u32` slices.
//!
//! HGMatch's candidate generation (paper §V-B, Algorithm 4) is built entirely
//! from three operations over sorted posting lists: union, intersection and
//! difference. The paper notes these "can be implemented very efficiently on
//! modern hardware"; the original baselines even used SIMD. We use tuned
//! scalar kernels instead (see DESIGN.md §5): a linear merge when the inputs
//! are similar in size and a galloping (exponential-probe) variant when one
//! side is much smaller — the classic adaptive strategy used by
//! inverted-index engines.
//!
//! All functions require their inputs to be strictly increasing (sorted,
//! deduplicated), which is an invariant of every posting list built by this
//! crate, and produce strictly increasing outputs.

/// Size ratio above which intersection switches from linear merge to
/// galloping search. With `|small| * RATIO < |large|`, probing the large side
/// with exponential search beats scanning it.
const GALLOP_RATIO: usize = 16;

/// Intersects two sorted slices into `out` (cleared first).
///
/// Adaptively picks a linear merge or a galloping probe depending on the
/// size ratio of the inputs.
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    // Quick reject on disjoint ranges.
    if a[a.len() - 1] < b[0] || b[b.len() - 1] < a[0] {
        return;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() * GALLOP_RATIO < large.len() {
        intersect_gallop(small, large, out);
    } else {
        intersect_merge(a, b, out);
    }
}

/// Convenience wrapper around [`intersect_into`] that allocates the output.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_into(a, b, &mut out);
    out
}

fn intersect_merge(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
}

fn intersect_gallop(small: &[u32], large: &[u32], out: &mut Vec<u32>) {
    let mut base = 0usize;
    for &x in small {
        match gallop_search(&large[base..], x) {
            Ok(offset) => {
                out.push(x);
                base += offset + 1;
            }
            Err(offset) => base += offset,
        }
        if base >= large.len() {
            break;
        }
    }
}

/// Exponential search for `target` in a sorted slice. Returns `Ok(pos)` when
/// found, `Err(insertion_pos)` otherwise — mirroring `binary_search`.
fn gallop_search(slice: &[u32], target: u32) -> Result<usize, usize> {
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi] < target {
        hi <<= 1;
    }
    let lo = hi >> 1;
    // The probe stopped with slice[hi] >= target (or ran off the end), so the
    // target may sit exactly at index `hi`: keep it inside the window.
    let hi = (hi + 1).min(slice.len());
    match slice[lo..hi].binary_search(&target) {
        Ok(pos) => Ok(lo + pos),
        Err(pos) => Err(lo + pos),
    }
}

/// Unions two sorted slices into `out` (cleared first).
pub fn union_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                out.push(x);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(y);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Convenience wrapper around [`union_into`] that allocates the output.
pub fn union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    union_into(a, b, &mut out);
    out
}

/// Unions many sorted slices. Slices are merged smallest-first to keep the
/// intermediate results small.
pub fn union_many(mut inputs: Vec<&[u32]>) -> Vec<u32> {
    match inputs.len() {
        0 => return Vec::new(),
        1 => return inputs[0].to_vec(),
        _ => {}
    }
    inputs.sort_by_key(|s| s.len());
    let mut acc = union(inputs[0], inputs[1]);
    let mut scratch = Vec::new();
    for s in &inputs[2..] {
        union_into(&acc, s, &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

/// Computes `a \ b` (elements of `a` not in `b`) into `out` (cleared first).
pub fn difference_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                out.push(x);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
}

/// Convenience wrapper around [`difference_into`] that allocates the output.
pub fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    difference_into(a, b, &mut out);
    out
}

/// Intersects many sorted slices, smallest-first so the running result only
/// shrinks. Returns an empty vector if `inputs` is empty.
pub fn intersect_many(mut inputs: Vec<&[u32]>) -> Vec<u32> {
    match inputs.len() {
        0 => return Vec::new(),
        1 => return inputs[0].to_vec(),
        _ => {}
    }
    inputs.sort_by_key(|s| s.len());
    let mut acc = intersect(inputs[0], inputs[1]);
    let mut scratch = Vec::new();
    for s in &inputs[2..] {
        if acc.is_empty() {
            break;
        }
        intersect_into(&acc, s, &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

/// Tests whether two sorted slices share at least one element.
pub fn intersects(a: &[u32], b: &[u32]) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    if a[a.len() - 1] < b[0] || b[b.len() - 1] < a[0] {
        return false;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() * GALLOP_RATIO < large.len() {
        let mut base = 0usize;
        for &x in small {
            match gallop_search(&large[base..], x) {
                Ok(_) => return true,
                Err(offset) => base += offset,
            }
            if base >= large.len() {
                return false;
            }
        }
        false
    } else {
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

/// Tests whether sorted slice `sub` is a subset of sorted slice `sup`.
pub fn is_subset(sub: &[u32], sup: &[u32]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut base = 0usize;
    for &x in sub {
        match gallop_search(&sup[base..], x) {
            Ok(offset) => base += offset + 1,
            Err(_) => return false,
        }
    }
    true
}

/// Checks the strict-increase invariant. Used by debug assertions and tests.
pub fn is_strictly_sorted(slice: &[u32]) -> bool {
    slice.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[3, 4, 5, 8]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[3, 4]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_identical() {
        let a = [2, 4, 6, 8];
        assert_eq!(intersect(&a, &a), a.to_vec());
    }

    #[test]
    fn intersect_gallop_path() {
        // Small side much smaller than the large side forces the gallop path.
        let large: Vec<u32> = (0..10_000).map(|i| i * 2).collect();
        let small = [6, 1000, 9999, 19_998];
        assert_eq!(intersect(&small, &large), vec![6, 1000, 19_998]);
        // symmetric argument order
        assert_eq!(intersect(&large, &small), vec![6, 1000, 19_998]);
    }

    #[test]
    fn union_basic() {
        assert_eq!(union(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(union(&[], &[5]), vec![5]);
        assert_eq!(union(&[5], &[]), vec![5]);
    }

    #[test]
    fn union_many_merges_all() {
        let a = [1u32, 5];
        let b = [2u32, 5, 9];
        let c = [3u32];
        assert_eq!(union_many(vec![&a, &b, &c]), vec![1, 2, 3, 5, 9]);
        assert_eq!(union_many(vec![]), Vec::<u32>::new());
        assert_eq!(union_many(vec![&a[..]]), vec![1, 5]);
    }

    #[test]
    fn difference_basic() {
        assert_eq!(difference(&[1, 2, 3, 4], &[2, 4]), vec![1, 3]);
        assert_eq!(difference(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(difference(&[], &[1]), Vec::<u32>::new());
        assert_eq!(difference(&[1, 2], &[1, 2]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_many_shrinks() {
        let a = [1u32, 2, 3, 4, 5];
        let b = [2u32, 3, 5];
        let c = [3u32, 5, 7];
        assert_eq!(intersect_many(vec![&a, &b, &c]), vec![3, 5]);
        assert_eq!(intersect_many(vec![]), Vec::<u32>::new());
        assert_eq!(intersect_many(vec![&a[..]]), a.to_vec());
    }

    #[test]
    fn intersect_many_early_exit_on_empty() {
        let a = [1u32];
        let b = [2u32];
        let c = [1u32, 2];
        assert_eq!(intersect_many(vec![&a, &b, &c]), Vec::<u32>::new());
    }

    #[test]
    fn intersects_and_subset() {
        assert!(intersects(&[1, 5, 9], &[9, 10]));
        assert!(!intersects(&[1, 5], &[2, 6]));
        assert!(!intersects(&[], &[1]));
        assert!(is_subset(&[2, 4], &[1, 2, 3, 4]));
        assert!(!is_subset(&[2, 6], &[1, 2, 3, 4]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 2], &[1]));
    }

    #[test]
    fn intersects_gallop_path() {
        let large: Vec<u32> = (0..10_000).collect();
        assert!(intersects(&[9_999], &large));
        assert!(!intersects(&[10_001], &large));
    }

    #[test]
    fn strictly_sorted_check() {
        assert!(is_strictly_sorted(&[]));
        assert!(is_strictly_sorted(&[1]));
        assert!(is_strictly_sorted(&[1, 2, 9]));
        assert!(!is_strictly_sorted(&[1, 1]));
        assert!(!is_strictly_sorted(&[2, 1]));
    }
}
