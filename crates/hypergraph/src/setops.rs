//! Sorted-set algebra over `u32` slices.
//!
//! HGMatch's candidate generation (paper §V-B, Algorithm 4) is built entirely
//! from three operations over sorted posting lists: union, intersection and
//! difference. The paper notes these "can be implemented very efficiently on
//! modern hardware"; the original system used SIMD. This module therefore
//! layers three kernel families (selection strategy in DESIGN.md §5):
//!
//! * **scalar** — a linear merge when the inputs are similar in size and a
//!   galloping (exponential-probe) variant when one side is much smaller;
//!   the classic adaptive strategy of inverted-index engines. Always
//!   available, and the property-test oracle for everything else.
//! * **SIMD** — SSE/SSSE3 and AVX2 block kernels for intersection and
//!   difference (4 or 8 lanes per step, shuffle-compacted output), selected
//!   by runtime feature detection with a scalar tail. See `simd` below.
//! * **k-way** — a tournament-tree multiway union replacing repeated
//!   pairwise merging ([`union_many_into`]), used by candidate generation
//!   for the per-anchor posting unions.
//!
//! Dense-domain bitwise kernels live in [`crate::bitmap`]; the adaptive
//! sorted-list↔bitmap switch is made per posting list by
//! [`crate::inverted::InvertedIndex`] and per anchor by the engine.
//!
//! All functions require their inputs to be strictly increasing (sorted,
//! deduplicated), which is an invariant of every posting list built by this
//! crate, and produce strictly increasing outputs.
//!
//! Kernel selection can be pinned to the scalar family with
//! [`set_kernel_mode`] (or `HGMATCH_FORCE_SCALAR=1`), which the cross-check
//! tests use to prove result equality between families.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use crate::compressed::{CompressedPostings, BLOCK_LEN};

/// Size ratio above which intersection switches from linear merge to
/// galloping search. With `|small| * RATIO < |large|`, probing the large side
/// with exponential search beats scanning it.
const GALLOP_RATIO: usize = 16;

/// Below this many elements per side, SIMD setup overhead is not worth it
/// and the scalar merge runs instead.
const SIMD_MIN_LEN: usize = 16;

/// Inputs-per-union above which [`union_many_into`] switches from repeated
/// pairwise merging to the tournament-tree multiway merge.
const KWAY_THRESHOLD: usize = 4;

/// Which kernel family the dispatching entry points may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// Pick the predicted-cheapest kernel (SIMD where supported).
    Auto,
    /// Run scalar kernels only. Used by cross-check tests and ablations.
    ForceScalar,
}

static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

fn env_forces_scalar() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("HGMATCH_FORCE_SCALAR").is_ok_and(|v| v != "0" && !v.is_empty())
    })
}

/// Sets the kernel mode process-wide. Thread-safe; takes effect on the next
/// dispatched call.
pub fn set_kernel_mode(mode: KernelMode) {
    FORCE_SCALAR.store(mode == KernelMode::ForceScalar, Ordering::Relaxed);
}

/// Whether `HGMATCH_FORCE_SCALAR` is set to a forcing value (anything but
/// empty or `0`). Exposed so tests can mirror the exact dispatch predicate.
pub fn env_forced_scalar() -> bool {
    env_forces_scalar()
}

/// The active kernel mode ([`set_kernel_mode`] or `HGMATCH_FORCE_SCALAR=1`).
pub fn kernel_mode() -> KernelMode {
    if FORCE_SCALAR.load(Ordering::Relaxed) || env_forces_scalar() {
        KernelMode::ForceScalar
    } else {
        KernelMode::Auto
    }
}

/// The SIMD instruction set the dispatcher will use under
/// [`KernelMode::Auto`] on this machine: `"avx2"`, `"ssse3"` or `"scalar"`.
pub fn simd_level() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if simd::have_avx2() {
            return "avx2";
        }
        if simd::have_ssse3() {
            return "ssse3";
        }
    }
    "scalar"
}

#[inline]
fn use_simd(a_len: usize, b_len: usize) -> bool {
    a_len >= SIMD_MIN_LEN && b_len >= SIMD_MIN_LEN && kernel_mode() == KernelMode::Auto
}

/// Intersects two sorted slices into `out` (cleared first).
///
/// Dispatch: gallop when one side is ≫ smaller, else the widest supported
/// SIMD block kernel, else linear merge (DESIGN.md §5.2).
pub fn intersect_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    intersect_append(a, b, out);
}

/// Appending form of [`intersect_into`]: the same dispatch, but the result
/// is pushed after `out`'s existing contents. This is what the fused
/// compressed kernels call once per decoded block.
fn intersect_append(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    // Quick reject on disjoint ranges.
    if a[a.len() - 1] < b[0] || b[b.len() - 1] < a[0] {
        return;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() * GALLOP_RATIO < large.len() {
        intersect_gallop(small, large, out);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if use_simd(a.len(), b.len()) {
        if simd::have_avx2() {
            // SAFETY: AVX2 support verified at runtime.
            unsafe { simd::intersect_avx2(a, b, out) };
            return;
        }
        if simd::have_ssse3() {
            // SAFETY: SSSE3 support verified at runtime.
            unsafe { simd::intersect_ssse3(a, b, out) };
            return;
        }
    }
    intersect_merge(a, b, out);
}

/// Scalar-only intersection (adaptive merge/gallop). The oracle kernel:
/// always available, never SIMD.
pub fn intersect_into_scalar(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    intersect_append_scalar(a, b, out);
}

/// Appending form of [`intersect_into_scalar`].
fn intersect_append_scalar(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    if a[a.len() - 1] < b[0] || b[b.len() - 1] < a[0] {
        return;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() * GALLOP_RATIO < large.len() {
        intersect_gallop(small, large, out);
    } else {
        intersect_merge(a, b, out);
    }
}

/// Convenience wrapper around [`intersect_into`] that allocates the output.
pub fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_into(a, b, &mut out);
    out
}

fn intersect_merge(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
}

fn intersect_gallop(small: &[u32], large: &[u32], out: &mut Vec<u32>) {
    let mut base = 0usize;
    for &x in small {
        match gallop_search(&large[base..], x) {
            Ok(offset) => {
                out.push(x);
                base += offset + 1;
            }
            Err(offset) => base += offset,
        }
        if base >= large.len() {
            break;
        }
    }
}

/// Exponential search for `target` in a sorted slice. Returns `Ok(pos)` when
/// found, `Err(insertion_pos)` otherwise — mirroring `binary_search`.
fn gallop_search(slice: &[u32], target: u32) -> Result<usize, usize> {
    let mut hi = 1usize;
    while hi < slice.len() && slice[hi] < target {
        hi <<= 1;
    }
    let lo = hi >> 1;
    // The probe stopped with slice[hi] >= target (or ran off the end), so the
    // target may sit exactly at index `hi`: keep it inside the window.
    let hi = (hi + 1).min(slice.len());
    match slice[lo..hi].binary_search(&target) {
        Ok(pos) => Ok(lo + pos),
        Err(pos) => Err(lo + pos),
    }
}

/// Unions two sorted slices into `out` (cleared first).
pub fn union_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    out.reserve(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                out.push(x);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(y);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(x);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Convenience wrapper around [`union_into`] that allocates the output.
pub fn union(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    union_into(a, b, &mut out);
    out
}

/// Reusable buffers for [`union_many_into`]'s tournament merge. Hold one
/// per worker/state and the k-way union allocates nothing in steady state.
#[derive(Debug, Default)]
pub struct MultiwayScratch {
    bufs: Vec<Vec<u32>>,
    spare: Vec<u32>,
}

impl MultiwayScratch {
    /// Creates empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Unions many sorted slices into `out` (cleared first).
///
/// Few inputs are merged pairwise smallest-first; above `KWAY_THRESHOLD`
/// a tournament tree merges pairs in rounds — `O(n log k)` total work with
/// branch-predictable linear merges, instead of the `O(k·n)` accumulating
/// pairwise loop (DESIGN.md §5.3). This is the single k-way union used
/// both here and by candidate generation.
pub fn union_many_into(
    inputs: &mut Vec<&[u32]>,
    out: &mut Vec<u32>,
    scratch: &mut MultiwayScratch,
) {
    out.clear();
    match inputs.len() {
        0 => return,
        1 => {
            out.extend_from_slice(inputs[0]);
            return;
        }
        2 => {
            union_into(inputs[0], inputs[1], out);
            return;
        }
        _ => {}
    }
    if inputs.len() <= KWAY_THRESHOLD {
        // Pairwise, smallest-first: keeps intermediates small.
        inputs.sort_unstable_by_key(|s| s.len());
        union_into(inputs[0], inputs[1], out);
        for s in &inputs[2..] {
            union_into(out, s, &mut scratch.spare);
            std::mem::swap(out, &mut scratch.spare);
        }
        return;
    }

    // Tournament: round 0 merges the input slices pairwise into owned
    // buffers, later rounds merge those buffers pairwise until one remains.
    // Every element passes through ⌈log₂ k⌉ linear merges.
    let rounds_width = inputs.len().div_ceil(2);
    while scratch.bufs.len() < rounds_width {
        scratch.bufs.push(Vec::new());
    }
    let MultiwayScratch { bufs, spare } = scratch;
    let mut n = 0usize;
    for pair in inputs.chunks(2) {
        match *pair {
            [a, b] => union_into(a, b, &mut bufs[n]),
            [a] => {
                bufs[n].clear();
                bufs[n].extend_from_slice(a);
            }
            _ => unreachable!("chunks(2)"),
        }
        n += 1;
    }
    while n > 1 {
        let mut write = 0usize;
        let mut read = 0usize;
        while read + 1 < n {
            union_into(&bufs[read], &bufs[read + 1], spare);
            std::mem::swap(&mut bufs[write], spare);
            write += 1;
            read += 2;
        }
        if read < n {
            bufs.swap(write, read);
            write += 1;
        }
        n = write;
    }
    std::mem::swap(out, &mut bufs[0]);
}

/// Unions many sorted slices. Allocating wrapper around [`union_many_into`].
pub fn union_many(mut inputs: Vec<&[u32]>) -> Vec<u32> {
    let mut out = Vec::new();
    let mut scratch = MultiwayScratch::new();
    union_many_into(&mut inputs, &mut out, &mut scratch);
    out
}

/// Computes `a \ b` (elements of `a` not in `b`) into `out` (cleared first).
///
/// Dispatch mirrors [`intersect_into`]: SIMD block kernel on large similar
/// inputs, scalar merge otherwise.
pub fn difference_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    difference_append(a, b, out);
}

/// Appending form of [`difference_into`], for the fused compressed kernels.
fn difference_append(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    if a.is_empty() {
        return;
    }
    if b.is_empty() || a[a.len() - 1] < b[0] || b[b.len() - 1] < a[0] {
        out.extend_from_slice(a);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if use_simd(a.len(), b.len()) {
        if simd::have_avx2() {
            // SAFETY: AVX2 support verified at runtime.
            unsafe { simd::difference_avx2(a, b, out) };
            return;
        }
        if simd::have_ssse3() {
            // SAFETY: SSSE3 support verified at runtime.
            unsafe { simd::difference_ssse3(a, b, out) };
            return;
        }
    }
    difference_merge(a, b, out);
}

/// Scalar-only difference; the oracle kernel for [`difference_into`].
pub fn difference_into_scalar(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    difference_merge(a, b, out);
}

fn difference_merge(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.reserve(a.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => {
                out.push(x);
                i += 1;
            }
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
}

/// Convenience wrapper around [`difference_into`] that allocates the output.
pub fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    difference_into(a, b, &mut out);
    out
}

/// Intersects many sorted slices, smallest-first so the running result only
/// shrinks. Returns an empty vector if `inputs` is empty.
pub fn intersect_many(mut inputs: Vec<&[u32]>) -> Vec<u32> {
    match inputs.len() {
        0 => return Vec::new(),
        1 => return inputs[0].to_vec(),
        _ => {}
    }
    inputs.sort_unstable_by_key(|s| s.len());
    let mut acc = intersect(inputs[0], inputs[1]);
    let mut scratch = Vec::new();
    for s in &inputs[2..] {
        if acc.is_empty() {
            break;
        }
        intersect_into(&acc, s, &mut scratch);
        std::mem::swap(&mut acc, &mut scratch);
    }
    acc
}

/// Tests whether two sorted slices share at least one element.
pub fn intersects(a: &[u32], b: &[u32]) -> bool {
    if a.is_empty() || b.is_empty() {
        return false;
    }
    if a[a.len() - 1] < b[0] || b[b.len() - 1] < a[0] {
        return false;
    }
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len() * GALLOP_RATIO < large.len() {
        let mut base = 0usize;
        for &x in small {
            match gallop_search(&large[base..], x) {
                Ok(_) => return true,
                Err(offset) => base += offset,
            }
            if base >= large.len() {
                return false;
            }
        }
        false
    } else {
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }
}

/// Tests whether sorted slice `sub` is a subset of sorted slice `sup`.
pub fn is_subset(sub: &[u32], sup: &[u32]) -> bool {
    if sub.len() > sup.len() {
        return false;
    }
    let mut base = 0usize;
    for &x in sub {
        match gallop_search(&sup[base..], x) {
            Ok(offset) => base += offset + 1,
            Err(_) => return false,
        }
    }
    true
}

/// Checks the strict-increase invariant. Used by debug assertions and tests.
pub fn is_strictly_sorted(slice: &[u32]) -> bool {
    slice.windows(2).all(|w| w[0] < w[1])
}

// ---------------------------------------------------------------------------
// Fused kernels over delta-bitpacked postings (DESIGN.md §14).
//
// Each kernel walks the container block by block, decodes one block into a
// stack-resident `[u32; BLOCK_LEN]` scratch, and runs the ordinary
// (KernelMode-dispatched) append kernels against the overlapping subrange of
// the list operand — the whole posting is never materialised, and blocks
// whose `[min, max]` span cannot overlap the list are skipped without
// decoding. The `_scalar` variants decode fully and run the scalar oracle
// kernels, giving the cross-check tests a fused-free reference.
// ---------------------------------------------------------------------------

/// Intersects a compressed posting with a sorted list into `out` (cleared
/// first). Commutative in contents: `c ∩ list`.
pub fn intersect_compressed_into(c: &CompressedPostings, list: &[u32], out: &mut Vec<u32>) {
    out.clear();
    if c.is_empty() || list.is_empty() {
        return;
    }
    let mut scratch = [0u32; BLOCK_LEN];
    let mut lo = 0usize;
    for bi in 0..c.num_blocks() {
        let (bmin, bmax) = c.block_range(bi);
        lo += list[lo..].partition_point(|&x| x < bmin);
        if lo == list.len() {
            return;
        }
        if list[lo] > bmax {
            continue; // block sits entirely in a gap of the list
        }
        let hi = lo + list[lo..].partition_point(|&x| x <= bmax);
        if c.block_is_run(bi) {
            // Run block: every integer in [bmin, bmax] is stored, so the
            // intersection is exactly the list subrange — no decode.
            out.extend_from_slice(&list[lo..hi]);
        } else {
            intersect_append(c.decode_block(bi, &mut scratch), &list[lo..hi], out);
        }
        lo = hi;
        if lo == list.len() {
            return;
        }
    }
}

/// Scalar oracle for [`intersect_compressed_into`]: full decode, then the
/// scalar intersection.
pub fn intersect_compressed_into_scalar(c: &CompressedPostings, list: &[u32], out: &mut Vec<u32>) {
    let decoded = c.to_sorted();
    intersect_into_scalar(&decoded, list, out);
}

/// Computes `c \ list` into `out` (cleared first).
pub fn difference_compressed_list_into(c: &CompressedPostings, list: &[u32], out: &mut Vec<u32>) {
    out.clear();
    if c.is_empty() {
        return;
    }
    let mut scratch = [0u32; BLOCK_LEN];
    let mut lo = 0usize;
    for bi in 0..c.num_blocks() {
        let (bmin, bmax) = c.block_range(bi);
        lo += list[lo..].partition_point(|&x| x < bmin);
        let hi = lo + list[lo..].partition_point(|&x| x <= bmax);
        if c.block_is_run(bi) {
            // Run block minus the list subrange: emit the inter-hole runs,
            // collapsing consecutive list values into a single skip. The
            // cursors are u64 so a run ending at u32::MAX cannot overflow.
            let sub = &list[lo..hi];
            let mut v = u64::from(bmin);
            let mut k = 0;
            while k < sub.len() {
                out.extend(v as u32..sub[k]);
                let mut e = u64::from(sub[k]) + 1;
                k += 1;
                while k < sub.len() && u64::from(sub[k]) == e {
                    e += 1;
                    k += 1;
                }
                v = e;
            }
            if v <= u64::from(bmax) {
                out.extend(v as u32..=bmax);
            }
        } else {
            difference_append(c.decode_block(bi, &mut scratch), &list[lo..hi], out);
        }
        lo = hi;
    }
}

/// Computes `list \ c` into `out` (cleared first).
pub fn difference_list_compressed_into(list: &[u32], c: &CompressedPostings, out: &mut Vec<u32>) {
    out.clear();
    if list.is_empty() {
        return;
    }
    let mut scratch = [0u32; BLOCK_LEN];
    let mut lo = 0usize;
    for bi in 0..c.num_blocks() {
        let (bmin, bmax) = c.block_range(bi);
        // Everything below the block's span survives untouched.
        let split = lo + list[lo..].partition_point(|&x| x < bmin);
        out.extend_from_slice(&list[lo..split]);
        lo = split;
        if lo == list.len() {
            return;
        }
        let hi = lo + list[lo..].partition_point(|&x| x <= bmax);
        if hi > lo {
            if !c.block_is_run(bi) {
                difference_append(&list[lo..hi], c.decode_block(bi, &mut scratch), out);
            }
            // Run block: every list value inside [bmin, bmax] is stored in
            // the block, so the whole subrange is subtracted — emit nothing.
            lo = hi;
        }
    }
    out.extend_from_slice(&list[lo..]);
}

/// Tests whether a compressed posting and a sorted list share an element.
pub fn intersects_compressed(c: &CompressedPostings, list: &[u32]) -> bool {
    if c.is_empty() || list.is_empty() {
        return false;
    }
    let mut scratch = [0u32; BLOCK_LEN];
    let mut lo = 0usize;
    for bi in 0..c.num_blocks() {
        let (bmin, bmax) = c.block_range(bi);
        lo += list[lo..].partition_point(|&x| x < bmin);
        if lo == list.len() {
            return false;
        }
        if list[lo] > bmax {
            continue;
        }
        if c.block_is_run(bi) {
            return true; // list[lo] ∈ [bmin, bmax] and runs store the span
        }
        let hi = lo + list[lo..].partition_point(|&x| x <= bmax);
        if intersects(c.decode_block(bi, &mut scratch), &list[lo..hi]) {
            return true;
        }
        lo = hi;
        if lo == list.len() {
            return false;
        }
    }
    false
}

/// Tests whether every element of a compressed posting is in sorted `sup`.
pub fn is_subset_compressed_list(c: &CompressedPostings, sup: &[u32]) -> bool {
    if c.len() > sup.len() {
        return false;
    }
    let mut scratch = [0u32; BLOCK_LEN];
    let mut lo = 0usize;
    for bi in 0..c.num_blocks() {
        let (bmin, bmax) = c.block_range(bi);
        lo += sup[lo..].partition_point(|&x| x < bmin);
        let hi = lo + sup[lo..].partition_point(|&x| x <= bmax);
        if hi - lo < c.block_len(bi) {
            return false;
        }
        // Run block: `hi - lo >= count` distinct sup values inside a span of
        // exactly `count` integers means sup covers the block verbatim.
        if !c.block_is_run(bi) && !is_subset(c.decode_block(bi, &mut scratch), &sup[lo..hi]) {
            return false;
        }
        lo = hi;
    }
    true
}

/// Tests whether every element of sorted `sub` is in a compressed posting.
pub fn is_subset_list_compressed(sub: &[u32], c: &CompressedPostings) -> bool {
    if sub.is_empty() {
        return true;
    }
    if sub.len() > c.len() {
        return false;
    }
    let mut scratch = [0u32; BLOCK_LEN];
    let mut lo = 0usize;
    for bi in 0..c.num_blocks() {
        let (bmin, bmax) = c.block_range(bi);
        if sub[lo] < bmin {
            // A value fell into the gap before this block: not stored.
            return false;
        }
        let hi = lo + sub[lo..].partition_point(|&x| x <= bmax);
        if hi > lo {
            // Run blocks store every integer of their span, so the subrange
            // is covered for free.
            if !c.block_is_run(bi) && !is_subset(&sub[lo..hi], c.decode_block(bi, &mut scratch)) {
                return false;
            }
            lo = hi;
            if lo == sub.len() {
                return true;
            }
        }
    }
    false
}

/// SSE/AVX2 block kernels (DESIGN.md §5.2).
///
/// Both intersection and difference share one structure: load one block per
/// side (4 lanes under SSSE3, 8 under AVX2), compare every pair of lanes by
/// OR-ing the equality masks of all lane rotations of the `b` block, and
/// advance whichever block's maximum is smaller. A block of `a` is *emitted*
/// exactly once, when it is overtaken — its match mask then selects (for
/// intersection) or deselects (for difference) lanes, and a precomputed
/// shuffle table compacts the survivors to the front of the store. Tails
/// and the final partially-compared block fall back to scalar code.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;

    /// `PERM8[mask]` = AVX2 lane indices moving the set lanes of `mask` to
    /// the front (for `_mm256_permutevar8x32_epi32`).
    static PERM8: [[u32; 8]; 256] = build_perm8();

    const fn build_perm8() -> [[u32; 8]; 256] {
        let mut table = [[0u32; 8]; 256];
        let mut mask = 0usize;
        while mask < 256 {
            let mut out = 0usize;
            let mut lane = 0usize;
            while lane < 8 {
                if mask & (1 << lane) != 0 {
                    table[mask][out] = lane as u32;
                    out += 1;
                }
                lane += 1;
            }
            mask += 1;
        }
        table
    }

    /// `SHUF4[mask]` = byte shuffle moving the set 32-bit lanes of `mask`
    /// to the front (for `_mm_shuffle_epi8`).
    static SHUF4: [[u8; 16]; 16] = build_shuf4();

    const fn build_shuf4() -> [[u8; 16]; 16] {
        let mut table = [[0x80u8; 16]; 16];
        let mut mask = 0usize;
        while mask < 16 {
            let mut out = 0usize;
            let mut lane = 0usize;
            while lane < 4 {
                if mask & (1 << lane) != 0 {
                    let mut byte = 0usize;
                    while byte < 4 {
                        table[mask][out * 4 + byte] = (lane * 4 + byte) as u8;
                        byte += 1;
                    }
                    out += 1;
                }
                lane += 1;
            }
            mask += 1;
        }
        table
    }

    /// `ROT8[r]` = lane indices rotating an 8-lane vector left by `r`.
    static ROT8: [[u32; 8]; 8] = build_rot8();

    const fn build_rot8() -> [[u32; 8]; 8] {
        let mut table = [[0u32; 8]; 8];
        let mut r = 0usize;
        while r < 8 {
            let mut lane = 0usize;
            while lane < 8 {
                table[r][lane] = ((lane + r) % 8) as u32;
                lane += 1;
            }
            r += 1;
        }
        table
    }

    #[inline]
    pub fn have_avx2() -> bool {
        is_x86_feature_detected!("avx2")
    }

    #[inline]
    pub fn have_ssse3() -> bool {
        is_x86_feature_detected!("ssse3")
    }

    /// Match mask of `va`'s 8 lanes against any lane of `vb`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn match_mask8(va: __m256i, vb: __m256i) -> __m256i {
        let mut acc = _mm256_setzero_si256();
        // Compare against all 8 rotations of vb.
        for rot_idx in &ROT8 {
            let idx = _mm256_loadu_si256(rot_idx.as_ptr() as *const __m256i);
            let rot = _mm256_permutevar8x32_epi32(vb, idx);
            acc = _mm256_or_si256(acc, _mm256_cmpeq_epi32(va, rot));
        }
        acc
    }

    /// AVX2 intersection of strictly sorted slices, appended to `out`.
    ///
    /// # Safety
    /// Requires AVX2 (checked by the caller via [`have_avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn intersect_avx2(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        let base = out.len();
        out.reserve(a.len().min(b.len()) + 8);
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        let pout = out.as_mut_ptr().add(base);
        let mut acc = _mm256_setzero_si256();
        while i + 8 <= a.len() && j + 8 <= b.len() {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(j) as *const __m256i);
            let m = match_mask8(va, vb);
            acc = _mm256_or_si256(acc, m);
            let amax = *a.get_unchecked(i + 7);
            let bmax = *b.get_unchecked(j + 7);
            if bmax <= amax {
                j += 8;
            }
            if amax <= bmax {
                let mask = _mm256_movemask_ps(_mm256_castsi256_ps(acc)) as usize;
                let idx = _mm256_loadu_si256(PERM8[mask].as_ptr() as *const __m256i);
                let packed = _mm256_permutevar8x32_epi32(va, idx);
                _mm256_storeu_si256(pout.add(k) as *mut __m256i, packed);
                k += mask.count_ones() as usize;
                i += 8;
                acc = _mm256_setzero_si256();
            }
        }
        out.set_len(base + k);
        finish_partial_and_tail(a, b, i, j, movemask_pending_avx2(acc), out, true);
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn movemask_pending_avx2(acc: __m256i) -> usize {
        _mm256_movemask_ps(_mm256_castsi256_ps(acc)) as usize
    }

    /// AVX2 difference (`a \ b`) of strictly sorted slices, appended to
    /// `out`.
    ///
    /// # Safety
    /// Requires AVX2 (checked by the caller via [`have_avx2`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn difference_avx2(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        let base = out.len();
        out.reserve(a.len() + 8);
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        let pout = out.as_mut_ptr().add(base);
        let mut acc = _mm256_setzero_si256();
        while i + 8 <= a.len() && j + 8 <= b.len() {
            let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(j) as *const __m256i);
            let m = match_mask8(va, vb);
            acc = _mm256_or_si256(acc, m);
            let amax = *a.get_unchecked(i + 7);
            let bmax = *b.get_unchecked(j + 7);
            if bmax <= amax {
                j += 8;
            }
            if amax <= bmax {
                let mask = (_mm256_movemask_ps(_mm256_castsi256_ps(acc)) as usize) ^ 0xFF;
                let idx = _mm256_loadu_si256(PERM8[mask].as_ptr() as *const __m256i);
                let packed = _mm256_permutevar8x32_epi32(va, idx);
                _mm256_storeu_si256(pout.add(k) as *mut __m256i, packed);
                k += mask.count_ones() as usize;
                i += 8;
                acc = _mm256_setzero_si256();
            }
        }
        out.set_len(base + k);
        finish_partial_and_tail(a, b, i, j, movemask_pending_avx2(acc), out, false);
    }

    /// Match mask of `va`'s 4 lanes against any lane of `vb`.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn match_mask4(va: __m128i, vb: __m128i) -> __m128i {
        let r1 = _mm_shuffle_epi32(vb, 0b00_11_10_01);
        let r2 = _mm_shuffle_epi32(vb, 0b01_00_11_10);
        let r3 = _mm_shuffle_epi32(vb, 0b10_01_00_11);
        let m0 = _mm_cmpeq_epi32(va, vb);
        let m1 = _mm_cmpeq_epi32(va, r1);
        let m2 = _mm_cmpeq_epi32(va, r2);
        let m3 = _mm_cmpeq_epi32(va, r3);
        _mm_or_si128(_mm_or_si128(m0, m1), _mm_or_si128(m2, m3))
    }

    /// SSSE3 intersection of strictly sorted slices, appended to `out`.
    ///
    /// # Safety
    /// Requires SSSE3 (checked by the caller via [`have_ssse3`]).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn intersect_ssse3(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        let base = out.len();
        out.reserve(a.len().min(b.len()) + 4);
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        let pout = out.as_mut_ptr().add(base);
        let mut acc = _mm_setzero_si128();
        while i + 4 <= a.len() && j + 4 <= b.len() {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i);
            acc = _mm_or_si128(acc, match_mask4(va, vb));
            let amax = *a.get_unchecked(i + 3);
            let bmax = *b.get_unchecked(j + 3);
            if bmax <= amax {
                j += 4;
            }
            if amax <= bmax {
                let mask = _mm_movemask_ps(_mm_castsi128_ps(acc)) as usize;
                let shuf = _mm_loadu_si128(SHUF4[mask].as_ptr() as *const __m128i);
                let packed = _mm_shuffle_epi8(va, shuf);
                _mm_storeu_si128(pout.add(k) as *mut __m128i, packed);
                k += mask.count_ones() as usize;
                i += 4;
                acc = _mm_setzero_si128();
            }
        }
        out.set_len(base + k);
        let pending = _mm_movemask_ps(_mm_castsi128_ps(acc)) as usize;
        finish_partial_and_tail4(a, b, i, j, pending, out, true);
    }

    /// SSSE3 difference (`a \ b`) of strictly sorted slices, appended to
    /// `out`.
    ///
    /// # Safety
    /// Requires SSSE3 (checked by the caller via [`have_ssse3`]).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn difference_ssse3(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
        let base = out.len();
        out.reserve(a.len() + 4);
        let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
        let pout = out.as_mut_ptr().add(base);
        let mut acc = _mm_setzero_si128();
        while i + 4 <= a.len() && j + 4 <= b.len() {
            let va = _mm_loadu_si128(a.as_ptr().add(i) as *const __m128i);
            let vb = _mm_loadu_si128(b.as_ptr().add(j) as *const __m128i);
            acc = _mm_or_si128(acc, match_mask4(va, vb));
            let amax = *a.get_unchecked(i + 3);
            let bmax = *b.get_unchecked(j + 3);
            if bmax <= amax {
                j += 4;
            }
            if amax <= bmax {
                let mask = (_mm_movemask_ps(_mm_castsi128_ps(acc)) as usize) ^ 0xF;
                let shuf = _mm_loadu_si128(SHUF4[mask].as_ptr() as *const __m128i);
                let packed = _mm_shuffle_epi8(va, shuf);
                _mm_storeu_si128(pout.add(k) as *mut __m128i, packed);
                k += mask.count_ones() as usize;
                i += 4;
                acc = _mm_setzero_si128();
            }
        }
        out.set_len(base + k);
        let pending = _mm_movemask_ps(_mm_castsi128_ps(acc)) as usize;
        finish_partial_and_tail4(a, b, i, j, pending, out, false);
    }

    /// Completes an 8-lane kernel: resolves the final partially-compared
    /// `a` block (whose lanes may still have matches in `b[j..]`) and runs
    /// the scalar merge on the remainders. A lane already matched against a
    /// passed `b` block cannot reappear in `b[j..]` (strict sortedness), so
    /// the pending mask plus one binary search per unmatched lane is exact.
    fn finish_partial_and_tail(
        a: &[u32],
        b: &[u32],
        mut i: usize,
        j: usize,
        pending: usize,
        out: &mut Vec<u32>,
        keep_matches: bool,
    ) {
        if i + 8 <= a.len() {
            for lane in 0..8 {
                let v = a[i + lane];
                let matched = pending & (1 << lane) != 0 || b[j..].binary_search(&v).is_ok();
                if matched == keep_matches {
                    out.push(v);
                }
            }
            i += 8;
        }
        scalar_tail(&a[i..], &b[j..], out, keep_matches);
    }

    /// 4-lane version of [`finish_partial_and_tail`].
    fn finish_partial_and_tail4(
        a: &[u32],
        b: &[u32],
        mut i: usize,
        j: usize,
        pending: usize,
        out: &mut Vec<u32>,
        keep_matches: bool,
    ) {
        if i + 4 <= a.len() {
            for lane in 0..4 {
                let v = a[i + lane];
                let matched = pending & (1 << lane) != 0 || b[j..].binary_search(&v).is_ok();
                if matched == keep_matches {
                    out.push(v);
                }
            }
            i += 4;
        }
        scalar_tail(&a[i..], &b[j..], out, keep_matches);
    }

    fn scalar_tail(a: &[u32], b: &[u32], out: &mut Vec<u32>, keep_matches: bool) {
        if keep_matches {
            super::intersect_merge(a, b, out);
        } else {
            super::difference_merge(a, b, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        assert_eq!(intersect(&[1, 3, 5, 7], &[3, 4, 5, 8]), vec![3, 5]);
        assert_eq!(intersect(&[], &[1, 2]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[]), Vec::<u32>::new());
        assert_eq!(intersect(&[1, 2], &[3, 4]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_identical() {
        let a = [2, 4, 6, 8];
        assert_eq!(intersect(&a, &a), a.to_vec());
    }

    #[test]
    fn intersect_gallop_path() {
        // Small side much smaller than the large side forces the gallop path.
        let large: Vec<u32> = (0..10_000).map(|i| i * 2).collect();
        let small = [6, 1000, 9999, 19_998];
        assert_eq!(intersect(&small, &large), vec![6, 1000, 19_998]);
        // symmetric argument order
        assert_eq!(intersect(&large, &small), vec![6, 1000, 19_998]);
    }

    #[test]
    fn union_basic() {
        assert_eq!(union(&[1, 3], &[2, 3, 4]), vec![1, 2, 3, 4]);
        assert_eq!(union(&[], &[5]), vec![5]);
        assert_eq!(union(&[5], &[]), vec![5]);
    }

    #[test]
    fn union_many_merges_all() {
        let a = [1u32, 5];
        let b = [2u32, 5, 9];
        let c = [3u32];
        assert_eq!(union_many(vec![&a, &b, &c]), vec![1, 2, 3, 5, 9]);
        assert_eq!(union_many(vec![]), Vec::<u32>::new());
        assert_eq!(union_many(vec![&a[..]]), vec![1, 5]);
    }

    #[test]
    fn union_many_kway_tournament_path() {
        // More than KWAY_THRESHOLD inputs exercises the tournament merge.
        let lists: Vec<Vec<u32>> = (0..8u32).map(|k| (k..200).step_by(7).collect()).collect();
        let refs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
        let got = union_many(refs.clone());
        let mut expected: Vec<u32> = lists.iter().flatten().copied().collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(got, expected);
        assert!(is_strictly_sorted(&got));
    }

    #[test]
    fn union_many_kway_duplicate_heavy() {
        // All inputs identical: the tournament merges must collapse them.
        let a: Vec<u32> = (0..100).collect();
        let refs: Vec<&[u32]> = (0..6).map(|_| a.as_slice()).collect();
        assert_eq!(union_many(refs), a);
    }

    #[test]
    fn difference_basic() {
        assert_eq!(difference(&[1, 2, 3, 4], &[2, 4]), vec![1, 3]);
        assert_eq!(difference(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(difference(&[], &[1]), Vec::<u32>::new());
        assert_eq!(difference(&[1, 2], &[1, 2]), Vec::<u32>::new());
    }

    #[test]
    fn intersect_many_shrinks() {
        let a = [1u32, 2, 3, 4, 5];
        let b = [2u32, 3, 5];
        let c = [3u32, 5, 7];
        assert_eq!(intersect_many(vec![&a, &b, &c]), vec![3, 5]);
        assert_eq!(intersect_many(vec![]), Vec::<u32>::new());
        assert_eq!(intersect_many(vec![&a[..]]), a.to_vec());
    }

    #[test]
    fn intersect_many_early_exit_on_empty() {
        let a = [1u32];
        let b = [2u32];
        let c = [1u32, 2];
        assert_eq!(intersect_many(vec![&a, &b, &c]), Vec::<u32>::new());
    }

    #[test]
    fn intersects_and_subset() {
        assert!(intersects(&[1, 5, 9], &[9, 10]));
        assert!(!intersects(&[1, 5], &[2, 6]));
        assert!(!intersects(&[], &[1]));
        assert!(is_subset(&[2, 4], &[1, 2, 3, 4]));
        assert!(!is_subset(&[2, 6], &[1, 2, 3, 4]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1, 2], &[1]));
    }

    #[test]
    fn intersects_gallop_path() {
        let large: Vec<u32> = (0..10_000).collect();
        assert!(intersects(&[9_999], &large));
        assert!(!intersects(&[10_001], &large));
    }

    #[test]
    fn strictly_sorted_check() {
        assert!(is_strictly_sorted(&[]));
        assert!(is_strictly_sorted(&[1]));
        assert!(is_strictly_sorted(&[1, 2, 9]));
        assert!(!is_strictly_sorted(&[1, 1]));
        assert!(!is_strictly_sorted(&[2, 1]));
    }

    #[test]
    fn kernel_mode_toggles() {
        // HGMATCH_FORCE_SCALAR pins ForceScalar process-wide; the toggle is
        // only observable without it.
        let env_forced = env_forced_scalar();
        if !env_forced {
            assert_eq!(kernel_mode(), KernelMode::Auto);
        }
        set_kernel_mode(KernelMode::ForceScalar);
        assert_eq!(kernel_mode(), KernelMode::ForceScalar);
        set_kernel_mode(KernelMode::Auto);
        if !env_forced {
            assert_eq!(kernel_mode(), KernelMode::Auto);
        }
        assert!(["avx2", "ssse3", "scalar"].contains(&simd_level()));
    }

    /// Deterministic pseudo-random sorted list for SIMD-vs-scalar checks.
    fn pseudo_sorted(seed: u64, len: usize, stride: u32) -> Vec<u32> {
        let mut x = seed | 1;
        let mut v = 0u32;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                v += 1 + (x % stride as u64) as u32;
                v
            })
            .collect()
    }

    #[test]
    fn simd_matches_scalar_on_varied_shapes() {
        let shapes = [
            (0usize, 0usize),
            (1, 100),
            (7, 9),
            (16, 16),
            (100, 100),
            (128, 131),
            (1000, 1000),
            (1000, 1003),
            (4096, 257),
        ];
        let mut simd_out = Vec::new();
        let mut scalar_out = Vec::new();
        for (la, lb) in shapes {
            for stride in [1u32, 2, 3, 16] {
                let a = pseudo_sorted(la as u64 + 1, la, stride);
                let b = pseudo_sorted(lb as u64 + 99, lb, stride);
                intersect_into(&a, &b, &mut simd_out);
                intersect_into_scalar(&a, &b, &mut scalar_out);
                assert_eq!(simd_out, scalar_out, "intersect {la}x{lb} stride {stride}");
                difference_into(&a, &b, &mut simd_out);
                difference_into_scalar(&a, &b, &mut scalar_out);
                assert_eq!(simd_out, scalar_out, "difference {la}x{lb} stride {stride}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn each_simd_kernel_matches_scalar_directly() {
        // The dispatcher prefers AVX2, so exercise both widths explicitly.
        let mut out = Vec::new();
        let mut expected = Vec::new();
        for (la, lb, stride) in [(64usize, 64usize, 2u32), (333, 217, 3), (1024, 1024, 1)] {
            let a = pseudo_sorted(5, la, stride);
            let b = pseudo_sorted(77, lb, stride);
            intersect_into_scalar(&a, &b, &mut expected);
            if simd::have_avx2() {
                out.clear();
                // SAFETY: AVX2 verified above.
                unsafe { simd::intersect_avx2(&a, &b, &mut out) };
                assert_eq!(out, expected, "avx2 intersect {la}x{lb}");
            }
            if simd::have_ssse3() {
                out.clear();
                // SAFETY: SSSE3 verified above.
                unsafe { simd::intersect_ssse3(&a, &b, &mut out) };
                assert_eq!(out, expected, "ssse3 intersect {la}x{lb}");
            }
            difference_into_scalar(&a, &b, &mut expected);
            if simd::have_avx2() {
                out.clear();
                // SAFETY: AVX2 verified above.
                unsafe { simd::difference_avx2(&a, &b, &mut out) };
                assert_eq!(out, expected, "avx2 difference {la}x{lb}");
            }
            if simd::have_ssse3() {
                out.clear();
                // SAFETY: SSSE3 verified above.
                unsafe { simd::difference_ssse3(&a, &b, &mut out) };
                assert_eq!(out, expected, "ssse3 difference {la}x{lb}");
            }
        }
    }

    #[test]
    fn simd_handles_identical_and_disjoint() {
        let a: Vec<u32> = (0..1000).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..1000).map(|i| i * 2 + 1).collect();
        assert_eq!(intersect(&a, &a), a);
        assert_eq!(intersect(&a, &b), Vec::<u32>::new());
        assert_eq!(difference(&a, &a), Vec::<u32>::new());
        assert_eq!(difference(&a, &b), a);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_kernels_append_after_existing_contents() {
        let a = pseudo_sorted(11, 500, 3);
        let b = pseudo_sorted(42, 500, 3);
        let mut expected = vec![7u32, 8, 9];
        let mut tail = Vec::new();
        intersect_into_scalar(&a, &b, &mut tail);
        expected.extend_from_slice(&tail);
        if simd::have_avx2() {
            let mut out = vec![7u32, 8, 9];
            // SAFETY: AVX2 verified above.
            unsafe { simd::intersect_avx2(&a, &b, &mut out) };
            assert_eq!(out, expected);
        }
        if simd::have_ssse3() {
            let mut out = vec![7u32, 8, 9];
            // SAFETY: SSSE3 verified above.
            unsafe { simd::intersect_ssse3(&a, &b, &mut out) };
            assert_eq!(out, expected);
        }
    }

    /// Fused-vs-oracle check across shapes that exercise block skipping,
    /// partial overlap, and both kernel families.
    #[test]
    fn fused_compressed_kernels_match_oracles() {
        let shapes = [
            (0usize, 100usize, 1u32),
            (100, 0, 3),
            (50, 50, 2),
            (300, 300, 3),
            (1000, 100, 17),
            (100, 1000, 17),
            (5000, 5000, 5),
        ];
        let mut fused = Vec::new();
        let mut oracle = Vec::new();
        for (lc, ll, stride) in shapes {
            let cv = pseudo_sorted(lc as u64 + 7, lc, stride);
            let list = pseudo_sorted(ll as u64 + 31, ll, stride);
            let c = crate::compressed::CompressedPostings::from_sorted(&cv);

            intersect_compressed_into(&c, &list, &mut fused);
            intersect_compressed_into_scalar(&c, &list, &mut oracle);
            assert_eq!(fused, oracle, "intersect {lc}x{ll} stride {stride}");

            difference_compressed_list_into(&c, &list, &mut fused);
            difference_into_scalar(&cv, &list, &mut oracle);
            assert_eq!(fused, oracle, "c\\list {lc}x{ll} stride {stride}");

            difference_list_compressed_into(&list, &c, &mut fused);
            difference_into_scalar(&list, &cv, &mut oracle);
            assert_eq!(fused, oracle, "list\\c {lc}x{ll} stride {stride}");

            assert_eq!(
                intersects_compressed(&c, &list),
                intersects(&cv, &list),
                "intersects {lc}x{ll} stride {stride}"
            );
            assert_eq!(
                is_subset_compressed_list(&c, &list),
                is_subset(&cv, &list),
                "c⊆list {lc}x{ll} stride {stride}"
            );
            assert_eq!(
                is_subset_list_compressed(&list, &c),
                is_subset(&list, &cv),
                "list⊆c {lc}x{ll} stride {stride}"
            );
        }
    }

    #[test]
    fn fused_kernels_handle_subsets_and_disjoint_blocks() {
        // c spans three widely separated blocks; the list sits between them.
        let mut cv: Vec<u32> = (0..300).collect();
        cv.extend(100_000..100_300u32);
        cv.extend(900_000..900_300u32);
        let c = crate::compressed::CompressedPostings::from_sorted(&cv);
        let between: Vec<u32> = (50_000..50_100).collect();
        let mut out = Vec::new();
        intersect_compressed_into(&c, &between, &mut out);
        assert!(out.is_empty());
        assert!(!intersects_compressed(&c, &between));
        difference_list_compressed_into(&between, &c, &mut out);
        assert_eq!(out, between);
        difference_compressed_list_into(&c, &between, &mut out);
        assert_eq!(out, cv);

        // Strict subset relationships in both directions.
        let sub: Vec<u32> = cv.iter().copied().step_by(7).collect();
        assert!(is_subset_list_compressed(&sub, &c));
        assert!(is_subset_compressed_list(&c, &cv));
        let mut missing = sub.clone();
        missing.push(50_000); // in the inter-block gap
        missing.sort_unstable();
        assert!(!is_subset_list_compressed(&missing, &c));
    }
}
