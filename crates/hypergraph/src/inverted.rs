//! The lightweight inverted hyperedge index (paper §IV-C).
//!
//! Each signature partition carries one inverted index mapping a vertex to
//! the *posting list* of local row ids of all its incident hyperedges in that
//! partition, in ascending order. Candidate generation (Algorithm 4) fetches
//! `he(v, S(eq))` from this index in `O(log k)` and then works purely with
//! sorted-set operations.
//!
//! The index is stored in CSR form over a sorted key array rather than a hash
//! map: lookups binary-search the key array, and the whole structure is three
//! flat allocations — matching the paper's "lightweight" size analysis of
//! `O(a_H · |E(H)|)` total postings.

use serde::{Deserialize, Serialize};

/// Inverted index from vertex id to a sorted posting list of local hyperedge
/// row ids within one partition.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Sorted vertex ids that appear in this partition.
    keys: Vec<u32>,
    /// `offsets[i]..offsets[i+1]` is the posting range of `keys[i]`.
    offsets: Vec<u32>,
    /// Concatenated posting lists (local row ids, ascending per key).
    postings: Vec<u32>,
}

impl InvertedIndex {
    /// Builds the index from `(vertex, row)` incidences.
    ///
    /// `rows[r]` must be the sorted vertex list of local row `r`; rows are
    /// visited in ascending order so each posting list comes out sorted.
    pub fn build(rows: &[&[u32]]) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (row, vertices) in rows.iter().enumerate() {
            let row = row as u32;
            for &v in *vertices {
                pairs.push((v, row));
            }
        }
        pairs.sort_unstable();

        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut postings = Vec::with_capacity(pairs.len());
        for (v, row) in pairs {
            if keys.last() != Some(&v) {
                // Close the previous key's range (offsets always ends with
                // the running posting count) and open a new one.
                keys.push(v);
                offsets.push(postings.len() as u32);
            }
            postings.push(row);
            *offsets.last_mut().unwrap() = postings.len() as u32;
        }
        Self { keys, offsets, postings }
    }

    /// Returns the posting list (sorted local row ids) for `vertex`, or an
    /// empty slice if the vertex does not appear in this partition.
    #[inline]
    pub fn postings(&self, vertex: u32) -> &[u32] {
        match self.keys.binary_search(&vertex) {
            Ok(i) => {
                let start = self.offsets[i] as usize;
                let end = self.offsets[i + 1] as usize;
                &self.postings[start..end]
            }
            Err(_) => &[],
        }
    }

    /// Number of incidences (total posting entries).
    #[inline]
    pub fn num_postings(&self) -> usize {
        self.postings.len()
    }

    /// Number of distinct vertices indexed.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Approximate heap size of the index in bytes.
    pub fn size_bytes(&self) -> usize {
        (self.keys.len() + self.offsets.len() + self.postings.len()) * std::mem::size_of::<u32>()
    }

    /// Iterates `(vertex, posting list)` pairs in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32])> {
        self.keys.iter().enumerate().map(move |(i, &v)| {
            let start = self.offsets[i] as usize;
            let end = self.offsets[i + 1] as usize;
            (v, &self.postings[start..end])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setops::is_strictly_sorted;

    #[test]
    fn build_and_lookup() {
        // Partition 1 of the paper's Table I: e1 = {v2, v4}, e2 = {v4, v6}.
        let rows: Vec<&[u32]> = vec![&[2, 4], &[4, 6]];
        let idx = InvertedIndex::build(&rows);
        assert_eq!(idx.postings(2), &[0]);
        assert_eq!(idx.postings(4), &[0, 1]);
        assert_eq!(idx.postings(6), &[1]);
        assert_eq!(idx.postings(99), &[] as &[u32]);
        assert_eq!(idx.num_keys(), 3);
        assert_eq!(idx.num_postings(), 4);
    }

    #[test]
    fn empty_index() {
        let idx = InvertedIndex::build(&[]);
        assert_eq!(idx.num_keys(), 0);
        assert_eq!(idx.postings(0), &[] as &[u32]);
        assert_eq!(idx.size_bytes(), 4); // the single offset sentinel
    }

    #[test]
    fn posting_lists_are_sorted() {
        let rows: Vec<&[u32]> = vec![&[1, 2, 3], &[2, 3], &[1, 3], &[3]];
        let idx = InvertedIndex::build(&rows);
        for (_, postings) in idx.iter() {
            assert!(is_strictly_sorted(postings));
        }
        assert_eq!(idx.postings(3), &[0, 1, 2, 3]);
        assert_eq!(idx.postings(1), &[0, 2]);
    }

    #[test]
    fn iter_visits_keys_in_order() {
        let rows: Vec<&[u32]> = vec![&[5, 9], &[1, 5]];
        let idx = InvertedIndex::build(&rows);
        let keys: Vec<u32> = idx.iter().map(|(v, _)| v).collect();
        assert_eq!(keys, vec![1, 5, 9]);
    }

    #[test]
    fn size_accounts_all_arrays() {
        let rows: Vec<&[u32]> = vec![&[1, 2]];
        let idx = InvertedIndex::build(&rows);
        // keys=2, offsets=3, postings=2 → 7 u32s.
        assert_eq!(idx.size_bytes(), 7 * 4);
    }
}
