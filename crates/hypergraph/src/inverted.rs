//! The lightweight inverted hyperedge index (paper §IV-C).
//!
//! Each signature partition carries one inverted index mapping a vertex to
//! the *posting list* of local row ids of all its incident hyperedges in that
//! partition, in ascending order. Candidate generation (Algorithm 4) fetches
//! `he(v, S(eq))` from this index in `O(log k)` and then works purely with
//! sorted-set operations.
//!
//! The index is stored in CSR form over a sorted key array rather than a hash
//! map: lookups binary-search the key array, and the whole structure is a few
//! flat allocations — matching the paper's "lightweight" size analysis of
//! `O(a_H · |E(H)|)` total postings.
//!
//! Postings are stored adaptively in one of three representations
//! (DESIGN.md §5.4, §14), chosen per key by an internal density rule:
//!
//! * **list** — the raw sorted `u32` slice; sparse keys and small partitions.
//! * **bitmap** — the sorted list *plus* a [`Bitmap`] over the row space, for
//!   dense keys of large partitions (word-wide set algebra).
//! * **compressed** — delta-bitpacked blocks
//!   ([`CompressedPostings`]); mid-density long postings, where the raw list
//!   is dropped entirely and the fused kernels in [`crate::setops`] decode
//!   one block at a time.
//!
//! `HGMATCH_FORCE_REPR=list|bitmap|compressed` (or [`set_forced_repr`])
//! pins the choice for stress testing, mirroring `HGMATCH_FORCE_SCALAR`.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use crate::bitmap::Bitmap;
use crate::compressed::CompressedPostings;

/// Partitions with fewer rows than this never materialise bitmaps — the
/// sorted lists are already tiny (DESIGN.md §5.4). Exported so candidate
/// generation's density heuristic cannot drift from the index's own switch.
pub const MIN_BITMAP_ROWS: usize = 256;

/// A key is *dense* — and gets a bitmap next to its sorted posting list —
/// when it covers at least `1/DENSE_KEY_DIV` of the partition's rows.
const DENSE_KEY_DIV: usize = 32;

/// Postings at least this long that are not bitmap-dense switch to the
/// delta-bitpacked representation (DESIGN.md §14). Below it, the raw list
/// fits a cache line or two and block headers would dominate.
pub const COMPRESSED_MIN_LEN: usize = 64;

/// Sentinel in `dense_idx` for keys without a bitmap.
const NO_BITMAP: u32 = u32::MAX;

/// Sentinel in `comp_idx` for keys without a compressed container.
const NO_COMPRESSED: u32 = u32::MAX;

/// Which of the three posting representations a key uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReprKind {
    /// Raw sorted row-id list.
    List,
    /// Sorted list plus a dense [`Bitmap`] over the partition's row space.
    Bitmap,
    /// Delta-bitpacked blocks; the raw list is not stored.
    Compressed,
}

/// Forced representation override, process-wide. 0 = none; else
/// 1 + discriminant of the forced [`ReprKind`].
static FORCED_REPR: AtomicU8 = AtomicU8::new(0);

fn env_forced_repr() -> Option<ReprKind> {
    static ENV: OnceLock<Option<ReprKind>> = OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("HGMATCH_FORCE_REPR").as_deref() {
        Ok("list") => Some(ReprKind::List),
        Ok("bitmap") => Some(ReprKind::Bitmap),
        Ok("compressed") => Some(ReprKind::Compressed),
        _ => None,
    })
}

/// Pins every key to one representation process-wide (`None` restores the
/// adaptive rule). Takes effect on the next index build or dynamic update;
/// used by stress tests to prove representations are semantically invisible.
pub fn set_forced_repr(kind: Option<ReprKind>) {
    let v = match kind {
        None => 0,
        Some(ReprKind::List) => 1,
        Some(ReprKind::Bitmap) => 2,
        Some(ReprKind::Compressed) => 3,
    };
    FORCED_REPR.store(v, Ordering::Relaxed);
}

/// The active forced representation ([`set_forced_repr`] or
/// `HGMATCH_FORCE_REPR=list|bitmap|compressed`), if any. Tests that assert
/// representation-specific structure skip themselves when this is set.
pub fn forced_repr() -> Option<ReprKind> {
    match FORCED_REPR.load(Ordering::Relaxed) {
        1 => Some(ReprKind::List),
        2 => Some(ReprKind::Bitmap),
        3 => Some(ReprKind::Compressed),
        _ => env_forced_repr(),
    }
}

/// Whether the dense-key rule alone (ignoring any forced override) gives
/// `posting_len` a bitmap in a partition of `num_rows` rows.
#[inline]
pub(crate) fn key_is_dense(posting_len: usize, num_rows: usize) -> bool {
    num_rows >= MIN_BITMAP_ROWS && posting_len * DENSE_KEY_DIV >= num_rows
}

/// The adaptive three-way representation rule shared by
/// [`InvertedIndex::build`] and the dynamic index ([`crate::dynamic`]):
/// dense keys of large partitions → [`ReprKind::Bitmap`]; other long
/// postings → [`ReprKind::Compressed`]; everything else →
/// [`ReprKind::List`]. Centralised — and applied again at freeze time — so
/// the mutable path flips representations at the *same* thresholds as a
/// fresh build and the snapshot==rebuild oracle compares identical bytes.
/// A forced override ([`forced_repr`]) wins over the rule.
#[inline]
pub(crate) fn choose_repr(posting_len: usize, num_rows: usize) -> ReprKind {
    if let Some(kind) = forced_repr() {
        return kind;
    }
    if key_is_dense(posting_len, num_rows) {
        ReprKind::Bitmap
    } else if posting_len >= COMPRESSED_MIN_LEN {
        ReprKind::Compressed
    } else {
        ReprKind::List
    }
}

/// A posting set in whichever representation its key carries. Consumers
/// dispatch on the arm to pick the cheapest set operation (DESIGN.md §5.5);
/// [`Posting::decode_into`] materialises the sorted list when a consumer
/// has no representation-specific path.
#[derive(Debug, Clone, Copy)]
pub enum Posting<'a> {
    /// Sorted local row ids.
    List(&'a [u32]),
    /// Dense key: the sorted list plus its bitmap over the row space.
    Dense {
        /// Sorted local row ids.
        list: &'a [u32],
        /// The same set as one bit per row.
        bits: &'a Bitmap,
    },
    /// Mid-density key: delta-bitpacked blocks, no raw list stored.
    Compressed(&'a CompressedPostings),
}

impl<'a> Posting<'a> {
    /// An empty posting (absent vertex).
    pub const EMPTY: Posting<'static> = Posting::List(&[]);

    /// Number of row ids in the set.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Posting::List(list) => list.len(),
            Posting::Dense { list, .. } => list.len(),
            Posting::Compressed(c) => c.len(),
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The sorted list when one is stored (`List` and `Dense` arms).
    #[inline]
    pub fn as_list(&self) -> Option<&'a [u32]> {
        match self {
            Posting::List(list) => Some(list),
            Posting::Dense { list, .. } => Some(list),
            Posting::Compressed(_) => None,
        }
    }

    /// The bitmap side, present only for dense keys.
    #[inline]
    pub fn bits(&self) -> Option<&'a Bitmap> {
        match self {
            Posting::Dense { bits, .. } => Some(bits),
            _ => None,
        }
    }

    /// Appends the sorted row ids to `out`, decoding if compressed.
    pub fn decode_into(&self, out: &mut Vec<u32>) {
        match self {
            Posting::List(list) | Posting::Dense { list, .. } => out.extend_from_slice(list),
            Posting::Compressed(c) => c.decode_into(out),
        }
    }

    /// The sorted row ids as a fresh vector.
    pub fn to_sorted(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        self.decode_into(&mut out);
        out
    }

    /// Which representation this posting carries.
    #[inline]
    pub fn repr(&self) -> ReprKind {
        match self {
            Posting::List(_) => ReprKind::List,
            Posting::Dense { .. } => ReprKind::Bitmap,
            Posting::Compressed(_) => ReprKind::Compressed,
        }
    }
}

/// Per-representation key/byte accounting of one index, for the CLI `stats`
/// breakdown. Bytes cover the posting payloads only (lists, bitmaps, packed
/// blocks), not the shared CSR key/offset arrays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ReprBreakdown {
    /// Keys stored as raw lists / their posting entries / their list bytes.
    pub list_keys: usize,
    /// Posting entries of list keys.
    pub list_postings: usize,
    /// Bytes of list keys (4 per posting).
    pub list_bytes: usize,
    /// Keys carrying a bitmap.
    pub bitmap_keys: usize,
    /// Posting entries of bitmap keys.
    pub bitmap_postings: usize,
    /// Bytes of bitmap keys (sorted list + bitmap words).
    pub bitmap_bytes: usize,
    /// Keys stored as delta-bitpacked blocks.
    pub compressed_keys: usize,
    /// Posting entries of compressed keys.
    pub compressed_postings: usize,
    /// Bytes of compressed keys (headers + packed words).
    pub compressed_bytes: usize,
}

impl ReprBreakdown {
    /// Accumulates another breakdown (e.g. across partitions).
    pub fn add(&mut self, other: &ReprBreakdown) {
        self.list_keys += other.list_keys;
        self.list_postings += other.list_postings;
        self.list_bytes += other.list_bytes;
        self.bitmap_keys += other.bitmap_keys;
        self.bitmap_postings += other.bitmap_postings;
        self.bitmap_bytes += other.bitmap_bytes;
        self.compressed_keys += other.compressed_keys;
        self.compressed_postings += other.compressed_postings;
        self.compressed_bytes += other.compressed_bytes;
    }

    /// Total posting entries across all representations.
    pub fn total_postings(&self) -> usize {
        self.list_postings + self.bitmap_postings + self.compressed_postings
    }

    /// Total posting payload bytes across all representations.
    pub fn total_bytes(&self) -> usize {
        self.list_bytes + self.bitmap_bytes + self.compressed_bytes
    }
}

/// Inverted index from vertex id to a sorted posting set of local hyperedge
/// row ids within one partition.
///
/// # Example
///
/// ```
/// use hgmatch_hypergraph::InvertedIndex;
///
/// // One partition of three hyperedge rows: {0,1}, {1,2}, {0,2}.
/// let rows: Vec<&[u32]> = vec![&[0, 1], &[1, 2], &[0, 2]];
/// let index = InvertedIndex::build(&rows);
///
/// // he(v, S): vertex 1 is incident to rows 0 and 1.
/// assert_eq!(index.posting(1).to_sorted(), &[0, 1]);
/// // Absent vertices yield an empty posting.
/// assert!(index.posting(9).is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Sorted vertex ids that appear in this partition.
    keys: Vec<u32>,
    /// `offsets[i]..offsets[i+1]` is the posting range of `keys[i]`
    /// (empty for compressed keys, whose raw list is not stored).
    offsets: Vec<u32>,
    /// Concatenated posting lists (local row ids, ascending per key).
    postings: Vec<u32>,
    /// Rows in the partition this index covers (the bitmap domain).
    num_rows: u32,
    /// Per-key index into `bitmaps`, or [`NO_BITMAP`].
    dense_idx: Vec<u32>,
    /// Bitmaps of the dense keys, in key order.
    bitmaps: Vec<Bitmap>,
    /// Per-key index into `compressed`, or [`NO_COMPRESSED`].
    comp_idx: Vec<u32>,
    /// Delta-bitpacked containers of the compressed keys, in key order.
    compressed: Vec<CompressedPostings>,
}

impl InvertedIndex {
    /// Builds the index from `(vertex, row)` incidences.
    ///
    /// `rows[r]` must be the sorted vertex list of local row `r`; rows are
    /// visited in ascending order so each posting list comes out sorted.
    pub fn build(rows: &[&[u32]]) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (row, vertices) in rows.iter().enumerate() {
            let row = row as u32;
            for &v in *vertices {
                pairs.push((v, row));
            }
        }
        pairs.sort_unstable();

        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut postings = Vec::with_capacity(pairs.len());
        for (v, row) in pairs {
            if keys.last() != Some(&v) {
                // Close the previous key's range (offsets always ends with
                // the running posting count) and open a new one.
                keys.push(v);
                offsets.push(postings.len() as u32);
            }
            postings.push(row);
            *offsets.last_mut().unwrap() = postings.len() as u32;
        }

        Self::finish(keys, offsets, postings, rows.len() as u32)
    }

    /// Builds the index from per-key sorted posting lists, visited in
    /// ascending key order. Produces exactly what [`InvertedIndex::build`]
    /// would for the same incidences — this is the freeze path of the
    /// dynamic index ([`crate::dynamic`]), which already keeps its postings
    /// keyed and sorted.
    pub(crate) fn from_sorted_postings<'a>(
        cells: impl Iterator<Item = (u32, &'a [u32])>,
        num_rows: u32,
    ) -> Self {
        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut postings = Vec::new();
        for (key, list) in cells {
            debug_assert!(keys.last().is_none_or(|&k| k < key), "keys must ascend");
            debug_assert!(crate::setops::is_strictly_sorted(list));
            if list.is_empty() {
                continue;
            }
            keys.push(key);
            postings.extend_from_slice(list);
            offsets.push(postings.len() as u32);
        }
        Self::finish(keys, offsets, postings, num_rows)
    }

    /// Shared tail of the constructors: the adaptive representation switch
    /// ([`choose_repr`]). Dense keys additionally carry a bitmap over the
    /// row space; mid-density keys re-encode into delta-bitpacked blocks
    /// and drop their raw list from `postings` entirely.
    fn finish(keys: Vec<u32>, offsets: Vec<u32>, postings: Vec<u32>, num_rows: u32) -> Self {
        let mut dense_idx = vec![NO_BITMAP; keys.len()];
        let mut comp_idx = vec![NO_COMPRESSED; keys.len()];
        let mut bitmaps = Vec::new();
        let mut compressed = Vec::new();
        let mut new_postings = Vec::new();
        let mut new_offsets = vec![0u32];
        for i in 0..keys.len() {
            let list = &postings[offsets[i] as usize..offsets[i + 1] as usize];
            match choose_repr(list.len(), num_rows as usize) {
                ReprKind::List => new_postings.extend_from_slice(list),
                ReprKind::Bitmap => {
                    dense_idx[i] = bitmaps.len() as u32;
                    bitmaps.push(Bitmap::from_sorted(list, num_rows));
                    new_postings.extend_from_slice(list);
                }
                ReprKind::Compressed => {
                    comp_idx[i] = compressed.len() as u32;
                    compressed.push(CompressedPostings::from_sorted(list));
                }
            }
            new_offsets.push(new_postings.len() as u32);
        }
        Self {
            keys,
            offsets: new_offsets,
            postings: new_postings,
            num_rows,
            dense_idx,
            bitmaps,
            comp_idx,
            compressed,
        }
    }

    /// Number of rows in the partition this index covers (the domain of
    /// posting bitmaps).
    #[inline]
    pub fn num_rows(&self) -> u32 {
        self.num_rows
    }

    /// Returns the posting set for `vertex` in its stored representation
    /// (an empty [`Posting::List`] for absent vertices).
    #[inline]
    pub fn posting(&self, vertex: u32) -> Posting<'_> {
        match self.keys.binary_search(&vertex) {
            Ok(i) => self.posting_at(i),
            Err(_) => Posting::EMPTY,
        }
    }

    /// The posting of the key at position `i` in the sorted key array.
    #[inline]
    fn posting_at(&self, i: usize) -> Posting<'_> {
        let comp = self.comp_idx[i];
        if comp != NO_COMPRESSED {
            return Posting::Compressed(&self.compressed[comp as usize]);
        }
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        let list = &self.postings[start..end];
        let dense = self.dense_idx[i];
        if dense != NO_BITMAP {
            Posting::Dense {
                list,
                bits: &self.bitmaps[dense as usize],
            }
        } else {
            Posting::List(list)
        }
    }

    /// Number of keys carrying a dense (bitmap) representation.
    #[inline]
    pub fn num_dense_keys(&self) -> usize {
        self.bitmaps.len()
    }

    /// Number of keys stored as delta-bitpacked blocks.
    #[inline]
    pub fn num_compressed_keys(&self) -> usize {
        self.compressed.len()
    }

    /// Number of incidences (total posting entries).
    #[inline]
    pub fn num_postings(&self) -> usize {
        self.postings.len()
            + self
                .compressed
                .iter()
                .map(CompressedPostings::len)
                .sum::<usize>()
    }

    /// Number of distinct vertices indexed.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Approximate heap size of the index in bytes, including the bitmaps
    /// of dense keys and the packed blocks of compressed keys.
    pub fn size_bytes(&self) -> usize {
        (self.keys.len()
            + self.offsets.len()
            + self.postings.len()
            + self.dense_idx.len()
            + self.comp_idx.len())
            * std::mem::size_of::<u32>()
            + self.bitmaps.iter().map(Bitmap::size_bytes).sum::<usize>()
            + self
                .compressed
                .iter()
                .map(CompressedPostings::size_bytes)
                .sum::<usize>()
    }

    /// Per-representation key and byte accounting (CLI `stats`).
    pub fn repr_breakdown(&self) -> ReprBreakdown {
        let mut b = ReprBreakdown::default();
        for i in 0..self.keys.len() {
            match self.posting_at(i) {
                Posting::List(list) => {
                    b.list_keys += 1;
                    b.list_postings += list.len();
                    b.list_bytes += std::mem::size_of_val(list);
                }
                Posting::Dense { list, bits } => {
                    b.bitmap_keys += 1;
                    b.bitmap_postings += list.len();
                    b.bitmap_bytes += std::mem::size_of_val(list) + bits.size_bytes();
                }
                Posting::Compressed(c) => {
                    b.compressed_keys += 1;
                    b.compressed_postings += c.len();
                    b.compressed_bytes += c.size_bytes();
                }
            }
        }
        b
    }

    /// Iterates `(vertex, posting)` pairs in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, Posting<'_>)> {
        self.keys
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, self.posting_at(i)))
    }

    /// Appends the HGMB v2 wire encoding: every internal array verbatim, so
    /// a loaded index is byte-for-byte the saved one — including which
    /// representation each key carries (the adaptive rule is *not* re-run
    /// on load; see DESIGN.md §17).
    pub(crate) fn encode_v2(&self, buf: &mut bytes::BytesMut) {
        use bytes::BufMut;
        buf.put_u32_le(self.keys.len() as u32);
        for &k in &self.keys {
            buf.put_u32_le(k);
        }
        for &o in &self.offsets {
            buf.put_u32_le(o);
        }
        buf.put_u32_le(self.postings.len() as u32);
        for &p in &self.postings {
            buf.put_u32_le(p);
        }
        buf.put_u32_le(self.num_rows);
        for &d in &self.dense_idx {
            buf.put_u32_le(d);
        }
        buf.put_u32_le(self.bitmaps.len() as u32);
        for bm in &self.bitmaps {
            bm.encode_v2(buf);
        }
        for &c in &self.comp_idx {
            buf.put_u32_le(c);
        }
        buf.put_u32_le(self.compressed.len() as u32);
        for c in &self.compressed {
            c.encode_v2(buf);
        }
    }

    /// Decodes the HGMB v2 wire encoding, advancing `data` past it. All
    /// structural invariants `posting_at` relies on (offset monotonicity,
    /// side-table index ranges, row-space bounds) are re-validated so
    /// corrupt input errors instead of panicking at query time.
    pub(crate) fn decode_v2(data: &mut &[u8]) -> crate::error::Result<Self> {
        use crate::error::HypergraphError;
        use bytes::Buf;
        let corrupt = |msg: String| HypergraphError::Corrupt(format!("inverted index: {msg}"));
        crate::io::need(data, 4, "index key count")?;
        let num_keys = data.get_u32_le() as usize;
        let keys = crate::io::read_u32s(data, num_keys, "index keys")?;
        if !crate::setops::is_strictly_sorted(&keys) {
            return Err(corrupt("keys not strictly sorted".into()));
        }
        let offsets = crate::io::read_u32s(data, num_keys + 1, "index offsets")?;
        crate::io::need(data, 4, "index posting count")?;
        let num_postings = data.get_u32_le() as usize;
        let postings = crate::io::read_u32s(data, num_postings, "index postings")?;
        crate::io::need(data, 4, "index row count")?;
        let num_rows = data.get_u32_le();
        let dense_idx = crate::io::read_u32s(data, num_keys, "index dense table")?;
        crate::io::need(data, 4, "index bitmap count")?;
        let num_bitmaps = data.get_u32_le() as usize;
        let mut bitmaps = Vec::with_capacity(num_bitmaps.min(1024));
        for _ in 0..num_bitmaps {
            let bm = Bitmap::decode_v2(data)?;
            if bm.domain() != num_rows {
                return Err(corrupt(format!(
                    "bitmap domain {} in a {num_rows}-row index",
                    bm.domain()
                )));
            }
            bitmaps.push(bm);
        }
        let comp_idx = crate::io::read_u32s(data, num_keys, "index compressed table")?;
        crate::io::need(data, 4, "index compressed count")?;
        let num_compressed = data.get_u32_le() as usize;
        let mut compressed = Vec::with_capacity(num_compressed.min(1024));
        for _ in 0..num_compressed {
            let c = CompressedPostings::decode_v2(data)?;
            if c.max().is_some_and(|m| m >= num_rows) {
                return Err(corrupt(format!(
                    "compressed posting exceeds the {num_rows}-row space"
                )));
            }
            compressed.push(c);
        }

        if offsets[0] != 0 || *offsets.last().unwrap() as usize != postings.len() {
            return Err(corrupt("offsets do not cover the posting array".into()));
        }
        for i in 0..num_keys {
            if offsets[i] > offsets[i + 1] {
                return Err(corrupt("offsets not monotone".into()));
            }
            let list = &postings[offsets[i] as usize..offsets[i + 1] as usize];
            if !crate::setops::is_strictly_sorted(list) {
                return Err(corrupt(format!("posting of key {} not sorted", keys[i])));
            }
            if list.last().is_some_and(|&r| r >= num_rows) {
                return Err(corrupt(format!(
                    "posting of key {} exceeds the {num_rows}-row space",
                    keys[i]
                )));
            }
            let d = dense_idx[i];
            if d != NO_BITMAP && d as usize >= bitmaps.len() {
                return Err(corrupt("dense table points past the bitmaps".into()));
            }
            let c = comp_idx[i];
            if c != NO_COMPRESSED && c as usize >= compressed.len() {
                return Err(corrupt(
                    "compressed table points past the containers".into(),
                ));
            }
            if d != NO_BITMAP && c != NO_COMPRESSED {
                return Err(corrupt(format!(
                    "key {} claims two representations",
                    keys[i]
                )));
            }
        }
        Ok(Self {
            keys,
            offsets,
            postings,
            num_rows,
            dense_idx,
            bitmaps,
            comp_idx,
            compressed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setops::is_strictly_sorted;

    #[test]
    fn build_and_lookup() {
        // Partition 1 of the paper's Table I: e1 = {v2, v4}, e2 = {v4, v6}.
        let rows: Vec<&[u32]> = vec![&[2, 4], &[4, 6]];
        let idx = InvertedIndex::build(&rows);
        assert_eq!(idx.posting(2).to_sorted(), &[0]);
        assert_eq!(idx.posting(4).to_sorted(), &[0, 1]);
        assert_eq!(idx.posting(6).to_sorted(), &[1]);
        assert!(idx.posting(99).is_empty());
        assert_eq!(idx.num_keys(), 3);
        assert_eq!(idx.num_postings(), 4);
    }

    #[test]
    fn empty_index() {
        let idx = InvertedIndex::build(&[]);
        assert_eq!(idx.num_keys(), 0);
        assert!(idx.posting(0).is_empty());
        assert_eq!(idx.size_bytes(), 4); // the single offset sentinel
    }

    #[test]
    fn posting_lists_are_sorted() {
        let rows: Vec<&[u32]> = vec![&[1, 2, 3], &[2, 3], &[1, 3], &[3]];
        let idx = InvertedIndex::build(&rows);
        for (_, posting) in idx.iter() {
            assert!(is_strictly_sorted(&posting.to_sorted()));
        }
        assert_eq!(idx.posting(3).to_sorted(), &[0, 1, 2, 3]);
        assert_eq!(idx.posting(1).to_sorted(), &[0, 2]);
    }

    #[test]
    fn iter_visits_keys_in_order() {
        let rows: Vec<&[u32]> = vec![&[5, 9], &[1, 5]];
        let idx = InvertedIndex::build(&rows);
        let keys: Vec<u32> = idx.iter().map(|(v, _)| v).collect();
        assert_eq!(keys, vec![1, 5, 9]);
    }

    #[test]
    fn size_accounts_all_arrays() {
        if forced_repr().is_some() {
            return; // exact layout asserts assume the adaptive rule
        }
        let rows: Vec<&[u32]> = vec![&[1, 2]];
        let idx = InvertedIndex::build(&rows);
        // keys=2, offsets=3, postings=2, dense_idx=2, comp_idx=2 → 11 u32s,
        // no bitmaps or compressed blocks.
        assert_eq!(idx.size_bytes(), 11 * 4);
        assert_eq!(idx.num_dense_keys(), 0);
        assert_eq!(idx.num_compressed_keys(), 0);
    }

    #[test]
    fn small_partitions_stay_list_only() {
        if forced_repr().is_some() {
            return;
        }
        let rows: Vec<Vec<u32>> = (0..100).map(|_| vec![7u32]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let idx = InvertedIndex::build(&refs);
        // Vertex 7 is in every row, but 100 rows < MIN_BITMAP_ROWS, and the
        // posting is long enough for compression.
        assert_eq!(idx.num_dense_keys(), 0);
        assert_eq!(idx.posting(7).repr(), ReprKind::Compressed);
        assert_eq!(idx.posting(7).len(), 100);
    }

    #[test]
    fn dense_keys_get_bitmaps_sparse_keys_do_not() {
        if forced_repr().is_some() {
            return;
        }
        // 512 rows; vertex 1 in every row (dense), vertex `1000 + r` unique
        // per row (sparse).
        let rows: Vec<Vec<u32>> = (0..512u32).map(|r| vec![1, 1000 + r]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let idx = InvertedIndex::build(&refs);
        assert_eq!(idx.num_rows(), 512);
        assert_eq!(idx.num_dense_keys(), 1);

        let dense = idx.posting(1);
        assert_eq!(dense.len(), 512);
        let bits = dense.bits().expect("hub vertex must be dense");
        assert_eq!(bits.to_sorted(), dense.as_list().unwrap());

        let sparse = idx.posting(1000);
        assert_eq!(sparse.to_sorted(), &[0]);
        assert!(sparse.bits().is_none());

        let absent = idx.posting(999);
        assert!(absent.is_empty() && absent.bits().is_none());

        // Bitmap bytes are accounted.
        assert!(idx.size_bytes() > (idx.num_keys() * 3 + 1 + idx.num_postings()) * 4);
    }

    #[test]
    fn mid_density_keys_compress() {
        if forced_repr().is_some() {
            return;
        }
        // 8192 rows; vertex 1 in every 32nd row: exactly the bitmap
        // threshold boundary — len * 32 == rows qualifies as dense, so use
        // every 33rd row to land in compressed territory.
        let rows: Vec<Vec<u32>> = (0..8192u32)
            .map(|r| {
                if r % 33 == 0 {
                    vec![1, 2 + r]
                } else {
                    vec![2 + r]
                }
            })
            .collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let idx = InvertedIndex::build(&refs);
        let posting = idx.posting(1);
        assert_eq!(posting.repr(), ReprKind::Compressed);
        assert_eq!(idx.num_compressed_keys(), 1);
        let expected: Vec<u32> = (0..8192).filter(|r| r % 33 == 0).collect();
        assert_eq!(posting.to_sorted(), expected);
        assert_eq!(idx.num_postings(), 8192 + expected.len());

        let b = idx.repr_breakdown();
        assert_eq!(b.compressed_keys, 1);
        assert_eq!(b.compressed_postings, expected.len());
        assert_eq!(b.total_postings(), idx.num_postings());
        // The memory win: packed bytes far below the 4 B/posting raw list.
        assert!(b.compressed_bytes * 3 < expected.len() * 4);
    }

    #[test]
    fn forced_repr_env_parsing_is_inert_here() {
        // This test only pins the programmatic accessor's default; the
        // env-driven path is exercised by the repr-stress CI job.
        let forced = forced_repr();
        assert!(
            forced.is_none()
                || matches!(
                    forced,
                    Some(ReprKind::List) | Some(ReprKind::Bitmap) | Some(ReprKind::Compressed)
                )
        );
    }
}
