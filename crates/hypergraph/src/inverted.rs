//! The lightweight inverted hyperedge index (paper §IV-C).
//!
//! Each signature partition carries one inverted index mapping a vertex to
//! the *posting list* of local row ids of all its incident hyperedges in that
//! partition, in ascending order. Candidate generation (Algorithm 4) fetches
//! `he(v, S(eq))` from this index in `O(log k)` and then works purely with
//! sorted-set operations.
//!
//! The index is stored in CSR form over a sorted key array rather than a hash
//! map: lookups binary-search the key array, and the whole structure is three
//! flat allocations — matching the paper's "lightweight" size analysis of
//! `O(a_H · |E(H)|)` total postings.

use serde::{Deserialize, Serialize};

use crate::bitmap::Bitmap;

/// Partitions with fewer rows than this never materialise bitmaps — the
/// sorted lists are already tiny (DESIGN.md §5.4). Exported so candidate
/// generation's density heuristic cannot drift from the index's own switch.
pub const MIN_BITMAP_ROWS: usize = 256;

/// A key is *dense* — and gets a bitmap next to its sorted posting list —
/// when it covers at least `1/DENSE_KEY_DIV` of the partition's rows.
const DENSE_KEY_DIV: usize = 32;

/// Sentinel in `dense_idx` for keys without a bitmap.
const NO_BITMAP: u32 = u32::MAX;

/// The adaptive-representation rule shared by [`InvertedIndex::build`] and
/// the dynamic index ([`crate::dynamic`]): a key with `posting_len` entries
/// in a partition of `num_rows` rows carries a bitmap next to its sorted
/// list exactly when this returns `true`. Centralised so the mutable path
/// flips representations at the *same* thresholds as a fresh build.
#[inline]
pub(crate) fn key_is_dense(posting_len: usize, num_rows: usize) -> bool {
    num_rows >= MIN_BITMAP_ROWS && posting_len * DENSE_KEY_DIV >= num_rows
}

/// A posting set in both of its representations: the sorted row-id list
/// (always present) and, for dense keys of large partitions, a [`Bitmap`]
/// over the partition's row space. Consumers pick whichever representation
/// makes their set operation cheaper (DESIGN.md §5.5).
#[derive(Debug, Clone, Copy)]
pub struct Posting<'a> {
    /// Sorted local row ids.
    pub list: &'a [u32],
    /// Dense representation, present only for hot keys.
    pub bits: Option<&'a Bitmap>,
}

/// Inverted index from vertex id to a sorted posting list of local hyperedge
/// row ids within one partition.
///
/// # Example
///
/// ```
/// use hgmatch_hypergraph::InvertedIndex;
///
/// // One partition of three hyperedge rows: {0,1}, {1,2}, {0,2}.
/// let rows: Vec<&[u32]> = vec![&[0, 1], &[1, 2], &[0, 2]];
/// let index = InvertedIndex::build(&rows);
///
/// // he(v, S): vertex 1 is incident to rows 0 and 1.
/// assert_eq!(index.postings(1), &[0, 1]);
/// // Absent vertices yield an empty posting list.
/// assert!(index.postings(9).is_empty());
/// // Small partitions never materialise bitmaps.
/// assert!(index.posting(1).bits.is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Sorted vertex ids that appear in this partition.
    keys: Vec<u32>,
    /// `offsets[i]..offsets[i+1]` is the posting range of `keys[i]`.
    offsets: Vec<u32>,
    /// Concatenated posting lists (local row ids, ascending per key).
    postings: Vec<u32>,
    /// Rows in the partition this index covers (the bitmap domain).
    num_rows: u32,
    /// Per-key index into `bitmaps`, or [`NO_BITMAP`].
    dense_idx: Vec<u32>,
    /// Bitmaps of the dense keys, in key order.
    bitmaps: Vec<Bitmap>,
}

impl InvertedIndex {
    /// Builds the index from `(vertex, row)` incidences.
    ///
    /// `rows[r]` must be the sorted vertex list of local row `r`; rows are
    /// visited in ascending order so each posting list comes out sorted.
    pub fn build(rows: &[&[u32]]) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (row, vertices) in rows.iter().enumerate() {
            let row = row as u32;
            for &v in *vertices {
                pairs.push((v, row));
            }
        }
        pairs.sort_unstable();

        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut postings = Vec::with_capacity(pairs.len());
        for (v, row) in pairs {
            if keys.last() != Some(&v) {
                // Close the previous key's range (offsets always ends with
                // the running posting count) and open a new one.
                keys.push(v);
                offsets.push(postings.len() as u32);
            }
            postings.push(row);
            *offsets.last_mut().unwrap() = postings.len() as u32;
        }

        Self::finish(keys, offsets, postings, rows.len() as u32)
    }

    /// Builds the index from per-key sorted posting lists, visited in
    /// ascending key order. Produces exactly what [`InvertedIndex::build`]
    /// would for the same incidences — this is the freeze path of the
    /// dynamic index ([`crate::dynamic`]), which already keeps its postings
    /// keyed and sorted.
    pub(crate) fn from_sorted_postings<'a>(
        cells: impl Iterator<Item = (u32, &'a [u32])>,
        num_rows: u32,
    ) -> Self {
        let mut keys = Vec::new();
        let mut offsets = vec![0u32];
        let mut postings = Vec::new();
        for (key, list) in cells {
            debug_assert!(keys.last().is_none_or(|&k| k < key), "keys must ascend");
            debug_assert!(crate::setops::is_strictly_sorted(list));
            if list.is_empty() {
                continue;
            }
            keys.push(key);
            postings.extend_from_slice(list);
            offsets.push(postings.len() as u32);
        }
        Self::finish(keys, offsets, postings, num_rows)
    }

    /// Shared tail of the constructors: the adaptive representation switch.
    /// Dense keys of large partitions additionally carry a bitmap over the
    /// row space, so consumers can run word-wide set algebra against hub
    /// vertices.
    fn finish(keys: Vec<u32>, offsets: Vec<u32>, postings: Vec<u32>, num_rows: u32) -> Self {
        let mut dense_idx = vec![NO_BITMAP; keys.len()];
        let mut bitmaps = Vec::new();
        for i in 0..keys.len() {
            let start = offsets[i] as usize;
            let end = offsets[i + 1] as usize;
            if key_is_dense(end - start, num_rows as usize) {
                dense_idx[i] = bitmaps.len() as u32;
                bitmaps.push(Bitmap::from_sorted(&postings[start..end], num_rows));
            }
        }
        Self {
            keys,
            offsets,
            postings,
            num_rows,
            dense_idx,
            bitmaps,
        }
    }

    /// Number of rows in the partition this index covers (the domain of
    /// posting bitmaps).
    #[inline]
    pub fn num_rows(&self) -> u32 {
        self.num_rows
    }

    /// Returns the posting set for `vertex` in both representations (the
    /// bitmap side is `None` for sparse keys and absent vertices).
    #[inline]
    pub fn posting(&self, vertex: u32) -> Posting<'_> {
        match self.keys.binary_search(&vertex) {
            Ok(i) => {
                let start = self.offsets[i] as usize;
                let end = self.offsets[i + 1] as usize;
                let dense = self.dense_idx[i];
                Posting {
                    list: &self.postings[start..end],
                    bits: (dense != NO_BITMAP).then(|| &self.bitmaps[dense as usize]),
                }
            }
            Err(_) => Posting {
                list: &[],
                bits: None,
            },
        }
    }

    /// Number of keys carrying a dense (bitmap) representation.
    #[inline]
    pub fn num_dense_keys(&self) -> usize {
        self.bitmaps.len()
    }

    /// Returns the posting list (sorted local row ids) for `vertex`, or an
    /// empty slice if the vertex does not appear in this partition.
    #[inline]
    pub fn postings(&self, vertex: u32) -> &[u32] {
        match self.keys.binary_search(&vertex) {
            Ok(i) => {
                let start = self.offsets[i] as usize;
                let end = self.offsets[i + 1] as usize;
                &self.postings[start..end]
            }
            Err(_) => &[],
        }
    }

    /// Number of incidences (total posting entries).
    #[inline]
    pub fn num_postings(&self) -> usize {
        self.postings.len()
    }

    /// Number of distinct vertices indexed.
    #[inline]
    pub fn num_keys(&self) -> usize {
        self.keys.len()
    }

    /// Approximate heap size of the index in bytes, including the bitmaps
    /// of dense keys.
    pub fn size_bytes(&self) -> usize {
        (self.keys.len() + self.offsets.len() + self.postings.len() + self.dense_idx.len())
            * std::mem::size_of::<u32>()
            + self.bitmaps.iter().map(Bitmap::size_bytes).sum::<usize>()
    }

    /// Iterates `(vertex, posting list)` pairs in ascending vertex order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[u32])> {
        self.keys.iter().enumerate().map(move |(i, &v)| {
            let start = self.offsets[i] as usize;
            let end = self.offsets[i + 1] as usize;
            (v, &self.postings[start..end])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setops::is_strictly_sorted;

    #[test]
    fn build_and_lookup() {
        // Partition 1 of the paper's Table I: e1 = {v2, v4}, e2 = {v4, v6}.
        let rows: Vec<&[u32]> = vec![&[2, 4], &[4, 6]];
        let idx = InvertedIndex::build(&rows);
        assert_eq!(idx.postings(2), &[0]);
        assert_eq!(idx.postings(4), &[0, 1]);
        assert_eq!(idx.postings(6), &[1]);
        assert_eq!(idx.postings(99), &[] as &[u32]);
        assert_eq!(idx.num_keys(), 3);
        assert_eq!(idx.num_postings(), 4);
    }

    #[test]
    fn empty_index() {
        let idx = InvertedIndex::build(&[]);
        assert_eq!(idx.num_keys(), 0);
        assert_eq!(idx.postings(0), &[] as &[u32]);
        assert_eq!(idx.size_bytes(), 4); // the single offset sentinel
    }

    #[test]
    fn posting_lists_are_sorted() {
        let rows: Vec<&[u32]> = vec![&[1, 2, 3], &[2, 3], &[1, 3], &[3]];
        let idx = InvertedIndex::build(&rows);
        for (_, postings) in idx.iter() {
            assert!(is_strictly_sorted(postings));
        }
        assert_eq!(idx.postings(3), &[0, 1, 2, 3]);
        assert_eq!(idx.postings(1), &[0, 2]);
    }

    #[test]
    fn iter_visits_keys_in_order() {
        let rows: Vec<&[u32]> = vec![&[5, 9], &[1, 5]];
        let idx = InvertedIndex::build(&rows);
        let keys: Vec<u32> = idx.iter().map(|(v, _)| v).collect();
        assert_eq!(keys, vec![1, 5, 9]);
    }

    #[test]
    fn size_accounts_all_arrays() {
        let rows: Vec<&[u32]> = vec![&[1, 2]];
        let idx = InvertedIndex::build(&rows);
        // keys=2, offsets=3, postings=2, dense_idx=2 → 9 u32s, no bitmaps.
        assert_eq!(idx.size_bytes(), 9 * 4);
        assert_eq!(idx.num_dense_keys(), 0);
    }

    #[test]
    fn small_partitions_stay_list_only() {
        let rows: Vec<Vec<u32>> = (0..100).map(|_| vec![7u32]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let idx = InvertedIndex::build(&refs);
        // Vertex 7 is in every row, but 100 rows < MIN_BITMAP_ROWS.
        assert_eq!(idx.num_dense_keys(), 0);
        assert!(idx.posting(7).bits.is_none());
        assert_eq!(idx.posting(7).list.len(), 100);
    }

    #[test]
    fn dense_keys_get_bitmaps_sparse_keys_do_not() {
        // 512 rows; vertex 1 in every row (dense), vertex `100 + r` unique
        // per row (sparse).
        let rows: Vec<Vec<u32>> = (0..512u32).map(|r| vec![1, 100 + r]).collect();
        let refs: Vec<&[u32]> = rows.iter().map(|r| r.as_slice()).collect();
        let idx = InvertedIndex::build(&refs);
        assert_eq!(idx.num_rows(), 512);
        assert_eq!(idx.num_dense_keys(), 1);

        let dense = idx.posting(1);
        assert_eq!(dense.list.len(), 512);
        let bits = dense.bits.expect("hub vertex must be dense");
        assert_eq!(bits.to_sorted(), dense.list);

        let sparse = idx.posting(100);
        assert_eq!(sparse.list, &[0]);
        assert!(sparse.bits.is_none());

        let absent = idx.posting(99);
        assert!(absent.list.is_empty() && absent.bits.is_none());

        // Bitmap bytes are accounted.
        assert!(idx.size_bytes() > (idx.num_keys() * 2 + 1 + idx.num_postings()) * 4);
    }
}
