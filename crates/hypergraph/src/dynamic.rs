//! Online hypergraph updates: incremental index maintenance and
//! copy-on-write snapshots.
//!
//! The offline pipeline ([`crate::builder::HypergraphBuilder`]) builds an
//! immutable [`Hypergraph`] once; production traffic instead *streams*
//! hyperedge insertions and deletions. [`DynamicHypergraph`] is the mutable
//! counterpart: it keeps the same signature-partitioned layout but
//! maintains every structure incrementally —
//!
//! * **Postings grow in place.** Rows are only ever appended to a
//!   partition, so a vertex's posting set grows by a sorted push; the
//!   three-way list↔bitmap↔compressed adaptive representation flips at the
//!   *same* thresholds as a fresh [`InvertedIndex::build`] (the rule is
//!   shared code). Dense keys grow their bitmap along with the partition's
//!   row space; compressed keys buffer appends in a small tail that seals
//!   into a delta-bitpacked block every [`BLOCK_LEN`] rows, and deletions
//!   repack only the affected block — falling back to a plain list when
//!   block-interior churn turns pathological (DESIGN.md §14).
//! * **Deletions tombstone, then compact.** Deleting a hyperedge marks its
//!   row dead and unlinks it from the affected posting lists in `O(degree)`
//!   posting edits; the row storage itself is compacted (order-preserving)
//!   once tombstones pass a threshold, or at the next snapshot.
//! * **Readers get epoch-pinned snapshots.** [`DynamicHypergraph::snapshot`]
//!   freezes the live state into a canonical immutable [`Hypergraph`] —
//!   *identical* to rebuilding from scratch over the surviving hyperedges
//!   (the differential-testing oracle) — while reusing the [`Arc`] of every
//!   partition the writer did not touch since the previous snapshot
//!   (copy-on-write at partition granularity). The returned
//!   [`SnapshotDelta`] carries the labels touched since the previous epoch
//!   and whether partition ids stayed stable, which is exactly what a plan
//!   cache needs to invalidate selectively (`hgmatch-core`'s
//!   `MatchServer::update_data`).
//!
//! Canonicalisation on snapshot means dynamic edge ids (returned by
//! [`DynamicHypergraph::insert_hyperedge`]) are *not* the ids of the
//! snapshot: snapshots renumber live edges densely in insertion order, the
//! way a fresh build would. Identify edges across epochs by their vertex
//! set ([`Hypergraph::find_edge`]).

use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::compressed::{CompressedPostings, BLOCK_LEN};
use crate::error::{HypergraphError, Result};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::hypergraph::{EdgeLocation, Hypergraph};
use crate::ids::{EdgeId, Label, SignatureId, VertexId};
use crate::inverted::{choose_repr, forced_repr, InvertedIndex, ReprKind};
use crate::partition::Partition;
use crate::signature::{Signature, SignatureInterner};
use crate::stats::{degree_bucket, LabelCardinality, PartitionStats, DEGREE_HIST_BUCKETS};

/// Tombstones needed before a partition compacts mid-stream (snapshots
/// always compact). Small partitions compact eagerly; large ones amortise.
const COMPACT_MIN_DEAD: usize = 32;

/// Block-interior deletions a packed cell tolerates before its churn is
/// *pathological* — each one repacks a whole block, so once they amount to
/// half the cell's length the cell falls back to a plain list until the
/// next compaction resets the counter.
const PACKED_CHURN_MIN: u32 = 32;

/// One operation of an update stream.
///
/// The text form (one op per line, `#` comments and blank lines skipped) is
/// what the CLI `update` subcommand and the `datasets` stream generator
/// exchange:
///
/// ```text
/// v 3            # add a vertex with label 3
/// + 0 4 7        # insert the hyperedge {0, 4, 7}
/// - 0 4 7        # delete it again
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Add a vertex with the given label.
    AddVertex(Label),
    /// Insert a hyperedge over existing vertex ids.
    Insert(Vec<u32>),
    /// Delete the hyperedge with exactly this vertex set.
    Delete(Vec<u32>),
}

impl UpdateOp {
    /// Parses one stream line; `Ok(None)` for blanks and comments.
    pub fn parse_line(line: &str, lineno: usize) -> Result<Option<Self>> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(None);
        }
        let parse_err = |message: String| HypergraphError::Parse {
            line: lineno,
            message,
        };
        let mut tokens = trimmed.split_whitespace();
        let tag = tokens.next().expect("non-empty line has a first token");
        let values: Vec<u32> = tokens
            .map(|t| {
                t.parse()
                    .map_err(|_| parse_err(format!("invalid id {t:?}")))
            })
            .collect::<Result<_>>()?;
        match tag {
            "v" => match values.as_slice() {
                [label] => Ok(Some(Self::AddVertex(Label::new(*label)))),
                _ => Err(parse_err("`v` takes exactly one label".into())),
            },
            "+" | "-" => {
                if values.is_empty() {
                    return Err(parse_err(format!("`{tag}` needs at least one vertex")));
                }
                Ok(Some(if tag == "+" {
                    Self::Insert(values)
                } else {
                    Self::Delete(values)
                }))
            }
            other => Err(parse_err(format!(
                "unknown op {other:?} (expected `v`, `+` or `-`)"
            ))),
        }
    }

    /// The text form of this op (no trailing newline).
    pub fn to_line(&self) -> String {
        let join = |vs: &[u32]| {
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        match self {
            Self::AddVertex(l) => format!("v {}", l.raw()),
            Self::Insert(vs) => format!("+ {}", join(vs)),
            Self::Delete(vs) => format!("- {}", join(vs)),
        }
    }
}

/// Parses a whole update-stream text into ops.
pub fn parse_update_stream(text: &str) -> Result<Vec<UpdateOp>> {
    let mut ops = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if let Some(op) = UpdateOp::parse_line(line, i + 1)? {
            ops.push(op);
        }
    }
    Ok(ops)
}

/// Serialises ops into the update-stream text format.
pub fn write_update_stream(ops: &[UpdateOp]) -> String {
    let mut out = String::new();
    for op in ops {
        out.push_str(&op.to_line());
        out.push('\n');
    }
    out
}

/// A consistent published epoch: the frozen graph plus what a cache needs
/// to know about how it differs from the previously published epoch.
#[derive(Debug, Clone)]
pub struct SnapshotDelta {
    /// The immutable, canonical view of the live hyperedge set.
    pub graph: Arc<Hypergraph>,
    /// The writer's epoch counter at freeze time (one tick per mutation).
    pub epoch: u64,
    /// Labels appearing in any signature touched since the previous
    /// snapshot (sorted, deduplicated). A cached plan whose query labels
    /// are disjoint from this set saw no cardinality change.
    pub touched_labels: Vec<Label>,
    /// Whether every signature live in both this and the previous snapshot
    /// kept its [`SignatureId`]. When `false` (a signature went extinct or
    /// re-ordered), plans compiled against the previous epoch may reference
    /// re-numbered partitions and must all be dropped.
    pub sids_stable: bool,
}

/// One posting set of the mutable index, in one of the three adaptive
/// representations ([`choose_repr`]).
///
/// The live representation is the mutable-state analogue of the frozen
/// index's per-key switch: snapshots do *not* consume it (freeze decodes
/// back to the sorted list and re-derives canonical representations over
/// the compacted row space); it exists so the mutable path carries the
/// same memory profile the static index would. The rule is re-evaluated
/// *lazily*, at the cell's own next mutation — rows appended through other
/// vertices grow the partition without touching this cell, so its
/// representation can lag the current row count until then (compaction
/// resyncs every cell). Maintenance is O(1) amortised per posting edit
/// except when a cell crosses a representation threshold, which rebuilds
/// that one cell.
#[derive(Debug)]
enum CellRepr {
    /// Sparse: plain sorted row-id list.
    List(Vec<u32>),
    /// Dense: sorted list plus an incrementally maintained bitmap.
    Dense { list: Vec<u32>, bits: Bitmap },
    /// Mid-density: sealed delta-bitpacked blocks plus an append tail.
    /// Rows only ascend, so appends land in `tail` and seal into a block
    /// once it reaches [`BLOCK_LEN`]; block-interior deletions repack just
    /// the affected block.
    Packed {
        blocks: CompressedPostings,
        tail: Vec<u32>,
    },
}

#[derive(Debug)]
struct PostingCell {
    repr: CellRepr,
    /// Block-interior deletions since the cell last (re-)packed. Reset by
    /// compaction ([`DynIndex::remap_rows`]); while pathological
    /// ([`PACKED_CHURN_MIN`]) the cell refuses the packed representation.
    churn: u32,
}

impl Default for PostingCell {
    fn default() -> Self {
        Self {
            repr: CellRepr::List(Vec::new()),
            churn: 0,
        }
    }
}

impl PostingCell {
    fn len(&self) -> usize {
        match &self.repr {
            CellRepr::List(list) | CellRepr::Dense { list, .. } => list.len(),
            CellRepr::Packed { blocks, tail } => blocks.len() + tail.len(),
        }
    }

    /// The posting set as an owned sorted list (decoding packed blocks).
    fn to_sorted(&self) -> Vec<u32> {
        match &self.repr {
            CellRepr::List(list) | CellRepr::Dense { list, .. } => list.clone(),
            CellRepr::Packed { blocks, tail } => {
                let mut out = Vec::with_capacity(self.len());
                blocks.decode_into(&mut out);
                out.extend_from_slice(tail);
                out
            }
        }
    }

    /// The sorted list without decoding, when one is stored.
    fn as_list(&self) -> Option<&[u32]> {
        match &self.repr {
            CellRepr::List(list) | CellRepr::Dense { list, .. } => Some(list),
            CellRepr::Packed { .. } => None,
        }
    }

    /// Appends `row` (strictly above every stored row).
    fn push(&mut self, row: u32, row_space: usize) {
        match &mut self.repr {
            CellRepr::List(list) => {
                debug_assert!(list.last().is_none_or(|&r| r < row));
                list.push(row);
            }
            CellRepr::Dense { list, bits } => {
                debug_assert!(list.last().is_none_or(|&r| r < row));
                list.push(row);
                bits.grow(row_space as u32);
                bits.insert(row);
            }
            CellRepr::Packed { blocks, tail } => {
                debug_assert!(tail
                    .last()
                    .copied()
                    .or(blocks.max())
                    .is_none_or(|r| r < row));
                tail.push(row);
                if tail.len() == BLOCK_LEN {
                    blocks.push_block(tail);
                    tail.clear();
                }
            }
        }
    }

    /// Unlinks `row` if present (block-local repack for packed cells).
    fn remove_row(&mut self, row: u32) {
        match &mut self.repr {
            CellRepr::List(list) => {
                if let Ok(i) = list.binary_search(&row) {
                    list.remove(i);
                }
            }
            CellRepr::Dense { list, bits } => {
                if let Ok(i) = list.binary_search(&row) {
                    list.remove(i);
                }
                if row < bits.domain() {
                    bits.remove(row);
                }
            }
            CellRepr::Packed { blocks, tail } => {
                if let Ok(i) = tail.binary_search(&row) {
                    tail.remove(i);
                } else if blocks.remove(row) {
                    self.churn += 1;
                }
            }
        }
    }

    /// Re-evaluates the adaptive representation after a mutation.
    /// `row_space` is the partition's current row-id domain.
    fn sync_repr(&mut self, row_space: usize) {
        let len = self.len();
        let mut desired = choose_repr(len, row_space);
        if desired == ReprKind::Compressed
            && forced_repr().is_none()
            && self.churn >= PACKED_CHURN_MIN
            && self.churn as usize * 2 >= len
        {
            // Pathological churn: hold the plain list until compaction
            // resets the counter.
            desired = ReprKind::List;
        }
        match (&self.repr, desired) {
            (CellRepr::List(_), ReprKind::List)
            | (CellRepr::Dense { .. }, ReprKind::Bitmap)
            | (CellRepr::Packed { .. }, ReprKind::Compressed) => {}
            (_, kind) => self.switch_repr(kind, row_space),
        }
    }

    /// Rebuilds this cell in representation `kind`.
    fn switch_repr(&mut self, kind: ReprKind, row_space: usize) {
        let list = match std::mem::replace(&mut self.repr, CellRepr::List(Vec::new())) {
            CellRepr::List(list) | CellRepr::Dense { list, .. } => list,
            CellRepr::Packed { blocks, tail } => {
                let mut out = Vec::with_capacity(blocks.len() + tail.len());
                blocks.decode_into(&mut out);
                out.extend_from_slice(&tail);
                out
            }
        };
        self.repr = match kind {
            ReprKind::List => CellRepr::List(list),
            ReprKind::Bitmap => {
                self.churn = 0;
                let bits = Bitmap::from_sorted(&list, row_space as u32);
                CellRepr::Dense { list, bits }
            }
            ReprKind::Compressed => {
                self.churn = 0;
                CellRepr::Packed {
                    blocks: CompressedPostings::from_sorted(&list),
                    tail: Vec::new(),
                }
            }
        };
    }
}

/// The mutable per-partition inverted index: vertex → [`PostingCell`].
#[derive(Debug, Default)]
struct DynIndex {
    cells: FxHashMap<u32, PostingCell>,
}

impl DynIndex {
    /// Links appended `row` to `v`. Rows only grow, so the push keeps the
    /// cell sorted in every representation. Returns the posting length
    /// after the insert.
    fn insert(&mut self, v: u32, row: u32, row_space: usize) -> usize {
        let cell = self.cells.entry(v).or_default();
        cell.push(row, row_space);
        cell.sync_repr(row_space);
        cell.len()
    }

    /// Unlinks `row` from `v` (tombstoned row leaves the posting set).
    /// Returns the posting length after the removal.
    fn remove(&mut self, v: u32, row: u32, row_space: usize) -> usize {
        let Some(cell) = self.cells.get_mut(&v) else {
            debug_assert!(false, "removing a row from an unindexed vertex");
            return 0;
        };
        cell.remove_row(row);
        let remaining = cell.len();
        if remaining == 0 {
            self.cells.remove(&v);
            return remaining;
        }
        cell.sync_repr(row_space);
        remaining
    }

    /// Applies an order-preserving row renumbering after compaction,
    /// resets churn counters, and re-chooses every cell's representation
    /// for the shrunk row space (the ISSUE's "re-choose at compaction").
    fn remap_rows(&mut self, remap: &[u32], row_space: usize) {
        for cell in self.cells.values_mut() {
            let mut list = cell.to_sorted();
            for r in &mut list {
                debug_assert_ne!(remap[*r as usize], u32::MAX, "posting to dead row");
                *r = remap[*r as usize];
            }
            cell.repr = CellRepr::List(list);
            cell.churn = 0;
            cell.sync_repr(row_space);
        }
    }
}

/// Incrementally maintained per-label degree summaries of one partition —
/// the mutable counterpart of [`PartitionStats`] (DESIGN.md §13). Every
/// posting edit reports a vertex-degree transition `old → new` here; the
/// bookkeeping is exact integer arithmetic, so the emitted stats are
/// bit-equal to [`PartitionStats::recompute`] over the same live state
/// (asserted by `prop_stats.rs` and, via `Partition` equality, by every
/// snapshot-vs-rebuild differential).
#[derive(Debug, Default)]
struct StatsAcc {
    groups: FxHashMap<Label, LabelAcc>,
}

#[derive(Debug, Default)]
struct LabelAcc {
    distinct: u64,
    incidences: u64,
    sum_sq: u64,
    hist: [u64; DEGREE_HIST_BUCKETS],
}

impl StatsAcc {
    /// Records that a vertex of `label` moved from within-partition degree
    /// `old` to `new` (the two differ by exactly one posting).
    fn on_degree_change(&mut self, label: Label, old: u64, new: u64) {
        debug_assert_eq!(old.abs_diff(new), 1, "posting edits move degrees by one");
        let group = self.groups.entry(label).or_default();
        if old > 0 {
            group.hist[degree_bucket(old)] -= 1;
        } else {
            group.distinct += 1;
        }
        if new > 0 {
            group.hist[degree_bucket(new)] += 1;
        } else {
            group.distinct -= 1;
        }
        if new > old {
            group.incidences += 1;
        } else {
            group.incidences -= 1;
        }
        group.sum_sq = group.sum_sq + new * new - old * old;
        if group.distinct == 0 {
            debug_assert_eq!(group.incidences, 0);
            debug_assert_eq!(group.sum_sq, 0);
            self.groups.remove(&label);
        }
    }

    /// Emits the canonical (label-sorted) form a frozen partition carries.
    fn to_stats(&self, rows: u64) -> PartitionStats {
        let mut labels: Vec<LabelCardinality> = self
            .groups
            .iter()
            .map(|(&label, acc)| LabelCardinality {
                label,
                distinct_vertices: acc.distinct,
                incidences: acc.incidences,
                sum_sq_degrees: acc.sum_sq,
                degree_hist: acc.hist,
            })
            .collect();
        labels.sort_unstable_by_key(|g| g.label);
        PartitionStats { rows, labels }
    }
}

/// One mutable signature partition: tombstoned row storage plus the
/// incrementally maintained [`DynIndex`] and [`StatsAcc`].
#[derive(Debug)]
struct DynPartition {
    arity: u32,
    /// Flattened vertex lists, tombstoned rows included until compaction.
    vertices: Vec<u32>,
    /// Dynamic edge id of each row (ascending; holds for tombstones too).
    global: Vec<u32>,
    live: Vec<bool>,
    dead: usize,
    index: DynIndex,
    stats: StatsAcc,
    /// Mutated since the last snapshot freeze (clears partition reuse).
    dirty: bool,
}

impl DynPartition {
    fn new(arity: u32) -> Self {
        Self {
            arity,
            vertices: Vec::new(),
            global: Vec::new(),
            live: Vec::new(),
            dead: 0,
            index: DynIndex::default(),
            stats: StatsAcc::default(),
            dirty: true,
        }
    }

    fn rows_total(&self) -> usize {
        self.global.len()
    }

    fn live_len(&self) -> usize {
        self.global.len() - self.dead
    }

    fn max_gid(&self) -> Option<u32> {
        self.global.last().copied()
    }

    /// Appends a live row, linking it into the index and stats. Returns
    /// the row id.
    fn insert_row(&mut self, vs: &[u32], gid: u32, labels: &[Label]) -> u32 {
        let row = self.global.len() as u32;
        self.vertices.extend_from_slice(vs);
        self.global.push(gid);
        self.live.push(true);
        let row_space = self.global.len();
        for &v in vs {
            let new_degree = self.index.insert(v, row, row_space) as u64;
            self.stats
                .on_degree_change(labels[v as usize], new_degree - 1, new_degree);
        }
        self.dirty = true;
        row
    }

    /// Tombstones a row and removes it from the posting sets and stats.
    fn delete_row(&mut self, row: u32, labels: &[Label]) {
        debug_assert!(self.live[row as usize], "double delete");
        self.live[row as usize] = false;
        self.dead += 1;
        self.dirty = true;
        let a = self.arity as usize;
        let row_space = self.global.len();
        for i in 0..a {
            let v = self.vertices[row as usize * a + i];
            let new_degree = self.index.remove(v, row, row_space) as u64;
            self.stats
                .on_degree_change(labels[v as usize], new_degree + 1, new_degree);
        }
    }

    fn should_compact(&self) -> bool {
        self.dead >= COMPACT_MIN_DEAD && self.dead * 2 >= self.rows_total()
    }

    /// Drops tombstoned rows, renumbering the survivors densely in order.
    /// Returns `(dynamic gid, new row)` for every surviving row so the
    /// caller can fix its locator.
    fn compact(&mut self) -> Vec<(u32, u32)> {
        let total = self.rows_total();
        let a = self.arity as usize;
        let mut remap = vec![u32::MAX; total];
        let mut vertices = Vec::with_capacity(self.live_len() * a);
        let mut global = Vec::with_capacity(self.live_len());
        let mut moves = Vec::with_capacity(self.live_len());
        for (r, slot) in remap.iter_mut().enumerate().take(total) {
            if !self.live[r] {
                continue;
            }
            let new_row = global.len() as u32;
            *slot = new_row;
            vertices.extend_from_slice(&self.vertices[r * a..(r + 1) * a]);
            global.push(self.global[r]);
            moves.push((self.global[r], new_row));
        }
        self.vertices = vertices;
        self.live = vec![true; global.len()];
        self.global = global;
        self.dead = 0;
        self.index.remap_rows(&remap, self.rows_total());
        moves
    }

    /// Freezes this (compacted) partition into the immutable form under a
    /// canonical signature id and edge-id remap. The CSR index is emitted
    /// straight from the maintained postings — no re-sort, and by
    /// construction byte-identical to a fresh [`InvertedIndex::build`].
    fn freeze(&self, canon_sid: SignatureId, gid_remap: &[u32]) -> Partition {
        debug_assert_eq!(self.dead, 0, "freeze requires a compacted partition");
        // Packed cells store no raw list; decode them into an owned arena
        // first (fully, so later pushes can't invalidate borrowed slices),
        // then mix those slices with the list-backed cells. `finish`
        // re-chooses the canonical representation per key, so the snapshot
        // stays byte-identical to a fresh build.
        let decoded: Vec<(u32, Vec<u32>)> = self
            .index
            .cells
            .iter()
            .filter(|(_, c)| c.as_list().is_none())
            .map(|(&v, c)| (v, c.to_sorted()))
            .collect();
        let mut cells: Vec<(u32, &[u32])> = self
            .index
            .cells
            .iter()
            .filter_map(|(&v, c)| Some((v, c.as_list()?)))
            .chain(decoded.iter().map(|(v, list)| (*v, list.as_slice())))
            .collect();
        cells.sort_unstable_by_key(|&(v, _)| v);
        let index =
            InvertedIndex::from_sorted_postings(cells.into_iter(), self.rows_total() as u32);
        let global_ids = self
            .global
            .iter()
            .map(|&g| EdgeId::new(gid_remap[g as usize]))
            .collect();
        Partition::from_parts(
            canon_sid,
            self.arity,
            self.vertices.clone(),
            global_ids,
            index,
            // Compacted: every remaining row is live, and the maintained
            // summaries are exactly what a recompute would produce.
            self.stats.to_stats(self.rows_total() as u64),
        )
    }
}

/// What the previous snapshot looked like, for copy-on-write reuse.
#[derive(Debug)]
struct SnapCache {
    graph: Arc<Hypergraph>,
    epoch: u64,
    /// Canonical sid each dynamic sid froze to (`None` = extinct).
    canon_of_dyn: Vec<Option<SignatureId>>,
}

/// A vertex-labelled hypergraph under online insertion and deletion of
/// hyperedges, with incrementally maintained partitions and inverted
/// indices and cheap epoch-pinned snapshots for readers.
///
/// # Example
///
/// ```
/// use hgmatch_hypergraph::{DynamicHypergraph, Label};
///
/// let mut h = DynamicHypergraph::new();
/// h.add_vertices(4, Label::new(0));
/// h.insert_hyperedge(vec![0, 1]).unwrap();
/// h.insert_hyperedge(vec![1, 2, 3]).unwrap();
/// let first = h.snapshot();
/// assert_eq!(first.graph.num_edges(), 2);
///
/// h.delete_hyperedge(&[0, 1]).unwrap();
/// let second = h.snapshot();
/// assert_eq!(second.graph.num_edges(), 1);
/// // The earlier snapshot is unaffected: readers pin their epoch.
/// assert_eq!(first.graph.num_edges(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DynamicHypergraph {
    labels: Vec<Label>,
    /// All-time signature interner (dynamic sids; extinct ones keep slots).
    interner: SignatureInterner,
    parts: Vec<DynPartition>,
    /// Dynamic gid → live location (`None` = deleted). Gids never reuse.
    locator: Vec<Option<EdgeLocation>>,
    /// Sorted vertex set → dynamic gid, for dedupe and delete-by-set.
    edge_lookup: FxHashMap<Vec<u32>, u32>,
    live_edges: usize,
    epoch: u64,
    /// Labels of signatures touched since the last snapshot.
    touched: FxHashSet<Label>,
    /// Smallest dynamic gid deleted since the last snapshot: partitions
    /// whose gids all lie below it kept their canonical edge ids.
    min_deleted_gid: Option<u32>,
    cache: Option<SnapCache>,
}

impl DynamicHypergraph {
    /// Creates an empty dynamic hypergraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a dynamic hypergraph from an existing immutable one (same
    /// vertices, same hyperedges in the same order).
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        let mut d = Self::new();
        d.labels = h.labels().to_vec();
        for (_, vs) in h.iter_edges() {
            d.insert_hyperedge(vs.to_vec())
                .expect("edges of a built hypergraph are valid");
        }
        // Seeding is epoch 0, not a stream of updates.
        d.epoch = 0;
        d.touched.clear();
        d
    }

    /// Adds a vertex with `label`, returning its id (dense, in call order).
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId::from_index(self.labels.len());
        self.labels.push(label);
        self.epoch += 1;
        id
    }

    /// Adds `n` vertices all labelled `label`; returns the first id.
    pub fn add_vertices(&mut self, n: usize, label: Label) -> VertexId {
        let first = VertexId::from_index(self.labels.len());
        self.labels.extend(std::iter::repeat_n(label, n));
        self.epoch += 1;
        first
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of *live* hyperedges.
    pub fn num_edges(&self) -> usize {
        self.live_edges
    }

    /// The writer's epoch counter (one tick per mutation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the (unsorted) vertex set is currently a live hyperedge.
    pub fn contains_edge(&self, vertices: &[u32]) -> bool {
        let mut key = vertices.to_vec();
        key.sort_unstable();
        key.dedup();
        self.edge_lookup.contains_key(&key)
    }

    /// Inserts a hyperedge over raw vertex ids. Vertices may arrive
    /// unsorted; duplicates inside the edge are collapsed and a repeat of a
    /// live edge is dropped (`Ok(None)`), mirroring the offline builder's
    /// dedupe policy.
    ///
    /// Returns the edge's *dynamic* id — stable for this writer, not the id
    /// the edge will carry in snapshots (see the module docs).
    pub fn insert_hyperedge(&mut self, mut vertices: Vec<u32>) -> Result<Option<EdgeId>> {
        let edge_index = self.locator.len();
        if vertices.is_empty() {
            return Err(HypergraphError::EmptyHyperedge { edge_index });
        }
        for &v in &vertices {
            if v as usize >= self.labels.len() {
                return Err(HypergraphError::UnknownVertex {
                    vertex: v,
                    edge_index,
                });
            }
        }
        vertices.sort_unstable();
        vertices.dedup();
        if self.edge_lookup.contains_key(&vertices) {
            return Ok(None);
        }

        let signature = Signature::new(vertices.iter().map(|&v| self.labels[v as usize]).collect());
        self.touched.extend(signature.labels().iter().copied());
        let sid = self.interner.intern(signature);
        if sid.index() == self.parts.len() {
            self.parts.push(DynPartition::new(vertices.len() as u32));
        }

        let gid = u32::try_from(self.locator.len()).expect("edge-id overflow");
        let row = self.parts[sid.index()].insert_row(&vertices, gid, &self.labels);
        self.locator.push(Some(EdgeLocation {
            signature: sid,
            row,
        }));
        self.edge_lookup.insert(vertices, gid);
        self.live_edges += 1;
        self.epoch += 1;
        Ok(Some(EdgeId::new(gid)))
    }

    /// Deletes the hyperedge with exactly this vertex set (order and
    /// repeats ignored). Returns whether an edge was removed.
    pub fn delete_hyperedge(&mut self, vertices: &[u32]) -> Result<bool> {
        let mut key = vertices.to_vec();
        key.sort_unstable();
        key.dedup();
        let Some(gid) = self.edge_lookup.remove(&key) else {
            return Ok(false);
        };
        let loc = self.locator[gid as usize]
            .take()
            .expect("lookup and locator agree");
        self.touched.extend(
            self.interner
                .resolve(loc.signature)
                .labels()
                .iter()
                .copied(),
        );
        let part = &mut self.parts[loc.signature.index()];
        part.delete_row(loc.row, &self.labels);
        self.live_edges -= 1;
        self.epoch += 1;
        self.min_deleted_gid = Some(self.min_deleted_gid.map_or(gid, |m| m.min(gid)));
        if part.should_compact() {
            self.compact_partition(loc.signature);
        }
        Ok(true)
    }

    /// Applies one stream op. Returns whether the graph changed (duplicate
    /// inserts and misses are no-ops, not errors — streams are replayable).
    pub fn apply(&mut self, op: &UpdateOp) -> Result<bool> {
        match op {
            UpdateOp::AddVertex(label) => {
                self.add_vertex(*label);
                Ok(true)
            }
            UpdateOp::Insert(vs) => Ok(self.insert_hyperedge(vs.clone())?.is_some()),
            UpdateOp::Delete(vs) => self.delete_hyperedge(vs),
        }
    }

    fn compact_partition(&mut self, sid: SignatureId) {
        for (gid, new_row) in self.parts[sid.index()].compact() {
            self.locator[gid as usize]
                .as_mut()
                .expect("surviving row is live")
                .row = new_row;
        }
    }

    /// Freezes the current live state into a canonical immutable
    /// [`Hypergraph`] and returns it with the delta information a plan
    /// cache needs ([`SnapshotDelta`]).
    ///
    /// The result is exactly what [`crate::builder::HypergraphBuilder`]
    /// would produce from the live hyperedges replayed in insertion order —
    /// partitions in first-encounter order, edges densely renumbered —
    /// which makes rebuild-from-scratch a byte-level oracle for this path.
    /// Partitions untouched since the previous snapshot are shared with it
    /// via [`Arc`] instead of being re-frozen.
    pub fn snapshot(&mut self) -> SnapshotDelta {
        if let Some(cache) = &self.cache {
            if cache.epoch == self.epoch {
                // Nothing changed: republish the cached epoch.
                return SnapshotDelta {
                    graph: Arc::clone(&cache.graph),
                    epoch: self.epoch,
                    touched_labels: Vec::new(),
                    sids_stable: true,
                };
            }
        }

        // Snapshots expose dense rows: compact every tombstoned partition.
        for sid in 0..self.parts.len() {
            if self.parts[sid].dead > 0 {
                self.compact_partition(SignatureId::from_index(sid));
            }
        }

        // Canonical renumbering: scan live edges in dynamic-gid (insertion)
        // order; signatures take canonical ids in first-encounter order and
        // edges take dense ids — the orders a fresh build would assign.
        let mut canon_of_dyn: Vec<Option<SignatureId>> = vec![None; self.parts.len()];
        let mut dyn_of_canon: Vec<usize> = Vec::new();
        let mut canon_interner = SignatureInterner::new();
        let mut gid_remap = vec![u32::MAX; self.locator.len()];
        let mut next_gid = 0u32;
        for (gid, loc) in self.locator.iter().enumerate() {
            let Some(loc) = loc else { continue };
            let dyn_sid = loc.signature.index();
            if canon_of_dyn[dyn_sid].is_none() {
                let canon = canon_interner.intern(self.interner.resolve(loc.signature).clone());
                debug_assert_eq!(canon.index(), dyn_of_canon.len());
                canon_of_dyn[dyn_sid] = Some(canon);
                dyn_of_canon.push(dyn_sid);
            }
            gid_remap[gid] = next_gid;
            next_gid += 1;
        }

        // Freeze dirty partitions; reuse the Arc of clean ones whose
        // canonical sid and edge ids are provably unchanged.
        let partitions: Vec<Arc<Partition>> = dyn_of_canon
            .iter()
            .enumerate()
            .map(|(canon_idx, &dyn_sid)| {
                let canon_sid = SignatureId::from_index(canon_idx);
                let part = &self.parts[dyn_sid];
                let ids_unshifted = self
                    .min_deleted_gid
                    .is_none_or(|h| part.max_gid().is_none_or(|m| m < h));
                let reusable = !part.dirty
                    && ids_unshifted
                    && self.cache.as_ref().is_some_and(|c| {
                        c.canon_of_dyn.get(dyn_sid).copied().flatten() == Some(canon_sid)
                    });
                if reusable {
                    let cache = self.cache.as_ref().expect("reusable implies cache");
                    Arc::clone(cache.graph.partition_arc(canon_sid))
                } else {
                    Arc::new(part.freeze(canon_sid, &gid_remap))
                }
            })
            .collect();

        // Canonical locator: live edges in insertion order; rows are the
        // (compacted) dynamic rows, which match the frozen tables.
        let locator: Vec<EdgeLocation> = self
            .locator
            .iter()
            .flatten()
            .map(|loc| EdgeLocation {
                signature: canon_of_dyn[loc.signature.index()].expect("live sid is canonical"),
                row: loc.row,
            })
            .collect();

        let graph = Arc::new(Hypergraph::assemble(
            self.labels.clone(),
            canon_interner,
            partitions,
            locator,
        ));

        let sids_stable = match &self.cache {
            None => false,
            Some(cache) => canon_of_dyn.iter().enumerate().all(|(dyn_sid, now)| {
                match (cache.canon_of_dyn.get(dyn_sid).copied().flatten(), *now) {
                    (Some(before), Some(now)) => before == now,
                    // Extinct or newly-live signatures don't shift survivors
                    // by themselves; their labels are in `touched_labels`.
                    _ => true,
                }
            }),
        };
        let mut touched_labels: Vec<Label> = self.touched.drain().collect();
        touched_labels.sort_unstable();
        self.min_deleted_gid = None;
        for part in &mut self.parts {
            part.dirty = false;
        }
        self.cache = Some(SnapCache {
            graph: Arc::clone(&graph),
            epoch: self.epoch,
            canon_of_dyn,
        });
        SnapshotDelta {
            graph,
            epoch: self.epoch,
            touched_labels,
            sids_stable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;
    use crate::inverted::MIN_BITMAP_ROWS;

    /// Rebuild oracle: a fresh build over `edges` in order.
    fn rebuild(labels: &[Label], edges: &[Vec<u32>]) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in labels {
            b.add_vertex(l);
        }
        for e in edges {
            b.add_edge(e.clone()).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn snapshot_matches_fresh_build_under_inserts() {
        let mut d = DynamicHypergraph::new();
        let labels: Vec<Label> = [0u32, 2, 0, 0, 1, 2, 0].map(Label::new).to_vec();
        for &l in &labels {
            d.add_vertex(l);
        }
        let edges = vec![
            vec![2, 4],
            vec![4, 6],
            vec![0, 1, 2],
            vec![3, 5, 6],
            vec![0, 1, 4, 6],
            vec![2, 3, 4, 5],
        ];
        for e in &edges {
            d.insert_hyperedge(e.clone()).unwrap();
        }
        let snap = d.snapshot();
        assert_eq!(*snap.graph, rebuild(&labels, &edges));
        assert!(!snap.sids_stable, "first snapshot has no predecessor");
        assert!(!snap.touched_labels.is_empty());
    }

    #[test]
    fn snapshot_matches_fresh_build_under_deletes() {
        let mut d = DynamicHypergraph::new();
        let labels: Vec<Label> = [0u32, 1, 0, 1, 0].map(Label::new).to_vec();
        for &l in &labels {
            d.add_vertex(l);
        }
        for e in [vec![0, 1], vec![2, 3], vec![0, 3], vec![1, 2, 4]] {
            d.insert_hyperedge(e).unwrap();
        }
        d.snapshot();
        assert!(d.delete_hyperedge(&[2, 3]).unwrap());
        assert!(!d.delete_hyperedge(&[2, 3]).unwrap(), "already gone");
        let snap = d.snapshot();
        let expected = rebuild(&labels, &[vec![0, 1], vec![0, 3], vec![1, 2, 4]]);
        assert_eq!(*snap.graph, expected);
        assert_eq!(snap.graph.num_edges(), 3);
    }

    #[test]
    fn reinsert_after_delete_moves_to_insertion_order() {
        let mut d = DynamicHypergraph::new();
        d.add_vertices(4, Label::new(0));
        d.insert_hyperedge(vec![0, 1]).unwrap();
        d.insert_hyperedge(vec![2, 3]).unwrap();
        d.delete_hyperedge(&[0, 1]).unwrap();
        d.insert_hyperedge(vec![0, 1]).unwrap();
        let snap = d.snapshot();
        // Canonical order: {2,3} (older surviving insert) then {0,1}.
        let labels = vec![Label::new(0); 4];
        assert_eq!(*snap.graph, rebuild(&labels, &[vec![2, 3], vec![0, 1]]));
    }

    #[test]
    fn clean_partitions_are_arc_shared_across_snapshots() {
        let mut d = DynamicHypergraph::new();
        d.add_vertices(6, Label::new(0));
        d.add_vertices(2, Label::new(1));
        d.insert_hyperedge(vec![0, 1]).unwrap(); // {0,0}
        d.insert_hyperedge(vec![0, 6]).unwrap(); // {0,1}
        let first = d.snapshot();
        // Touch only the {0,0,0} signature (new partition appended last).
        d.insert_hyperedge(vec![2, 3, 4]).unwrap();
        let second = d.snapshot();
        assert!(second.sids_stable);
        for sid in 0..2 {
            assert!(
                Arc::ptr_eq(
                    first.graph.partition_arc(SignatureId::from_index(sid)),
                    second.graph.partition_arc(SignatureId::from_index(sid)),
                ),
                "untouched partition {sid} must be shared"
            );
        }
        assert_eq!(second.graph.partitions().len(), 3);
    }

    #[test]
    fn unchanged_state_republishes_the_cached_snapshot() {
        let mut d = DynamicHypergraph::new();
        d.add_vertices(2, Label::new(0));
        d.insert_hyperedge(vec![0, 1]).unwrap();
        let a = d.snapshot();
        let b = d.snapshot();
        assert!(Arc::ptr_eq(&a.graph, &b.graph));
        assert!(b.sids_stable && b.touched_labels.is_empty());
    }

    #[test]
    fn extinction_reports_sids_unstable() {
        let mut d = DynamicHypergraph::new();
        d.add_vertices(2, Label::new(0));
        d.add_vertices(2, Label::new(1));
        d.insert_hyperedge(vec![0, 1]).unwrap(); // {0,0}
        d.insert_hyperedge(vec![2, 3]).unwrap(); // {1,1}
        d.snapshot();
        d.delete_hyperedge(&[0, 1]).unwrap();
        let snap = d.snapshot();
        assert!(!snap.sids_stable, "{{1,1}} shifted from sid 1 to sid 0");
        assert_eq!(snap.graph.partitions().len(), 1);
        assert_eq!(snap.touched_labels, vec![Label::new(0)]);
    }

    #[test]
    fn deleting_first_live_edge_of_a_signature_can_reorder_sids() {
        let mut d = DynamicHypergraph::new();
        d.add_vertices(4, Label::new(0));
        d.add_vertices(2, Label::new(1));
        d.insert_hyperedge(vec![0, 1]).unwrap(); // {0,0} first
        d.insert_hyperedge(vec![4, 5]).unwrap(); // {1,1}
        d.insert_hyperedge(vec![2, 3]).unwrap(); // {0,0} again
        d.snapshot();
        // Deleting {0,1} makes {1,1}'s first live edge older than {0,0}'s.
        d.delete_hyperedge(&[0, 1]).unwrap();
        let snap = d.snapshot();
        assert!(!snap.sids_stable);
        let labels: Vec<Label> = [0u32, 0, 0, 0, 1, 1].map(Label::new).to_vec();
        assert_eq!(*snap.graph, rebuild(&labels, &[vec![4, 5], vec![2, 3]]));
    }

    #[test]
    fn touched_labels_cover_inserts_and_deletes() {
        let mut d = DynamicHypergraph::new();
        d.add_vertices(2, Label::new(3));
        d.add_vertices(2, Label::new(7));
        d.insert_hyperedge(vec![0, 1]).unwrap();
        d.insert_hyperedge(vec![2, 3]).unwrap();
        d.snapshot();
        d.delete_hyperedge(&[2, 3]).unwrap();
        d.insert_hyperedge(vec![0, 2]).unwrap(); // {3,7}
        let snap = d.snapshot();
        assert_eq!(snap.touched_labels, vec![Label::new(3), Label::new(7)]);
    }

    #[test]
    fn adaptive_postings_flip_at_build_thresholds() {
        if crate::inverted::forced_repr().is_some() {
            return; // representation asserts are meaningless when forced
        }
        // Drive one partition past MIN_BITMAP_ROWS with a hub vertex: the
        // hub's live posting cell must pick up a bitmap exactly when a
        // fresh build would, and drop it again as deletions thin it out.
        let mut d = DynamicHypergraph::new();
        let n = (MIN_BITMAP_ROWS + 64) as u32;
        d.add_vertex(Label::new(0)); // hub
        d.add_vertices(n as usize, Label::new(1));
        for leaf in 1..=n {
            d.insert_hyperedge(vec![0, leaf]).unwrap();
        }
        {
            let part = &d.parts[0];
            let hub = &part.index.cells[&0];
            assert_eq!(hub.len(), n as usize);
            let CellRepr::Dense { list, bits } = &hub.repr else {
                panic!("hub is dense: bitmap-backed cell expected");
            };
            assert_eq!(bits.to_sorted(), *list, "bitmap mirrors the list");
            // A leaf vertex stays list-only.
            assert!(matches!(part.index.cells[&1].repr, CellRepr::List(_)));
        }
        // Snapshot equals a fresh build including its dense keys.
        let snap = d.snapshot();
        let p = snap.graph.partition(SignatureId::new(0));
        assert!(p.index().num_dense_keys() >= 1);
        assert!(p.incident_posting(0).bits().is_some());

        // Delete most hub edges: the cell must shed its bitmap when the
        // density rule stops holding.
        for leaf in 1..n {
            d.delete_hyperedge(&[0, leaf]).unwrap();
        }
        let part = &d.parts[0];
        assert!(
            matches!(part.index.cells[&0].repr, CellRepr::List(_)),
            "sparse again"
        );
        let snap = d.snapshot();
        let expected = {
            let mut b = HypergraphBuilder::new();
            b.add_vertex(Label::new(0));
            b.add_vertices(n as usize, Label::new(1));
            b.add_edge(vec![0, n]).unwrap();
            b.build().unwrap()
        };
        assert_eq!(*snap.graph, expected);
    }

    #[test]
    fn packed_cells_seal_repack_and_fall_back_under_churn() {
        if crate::inverted::forced_repr().is_some() {
            return; // representation asserts are meaningless when forced
        }
        // A mid-density hub: many postings but a small fraction of its
        // partition's rows, so the live cell must go packed, seal full
        // blocks as it grows, repack block-locally on deletes, and demote
        // back to a list under pathological churn. The row space is
        // diluted with other {0,1}-signature edges that avoid the hub.
        let mut d = DynamicHypergraph::new();
        let n = (2 * BLOCK_LEN + 40) as u32;
        d.add_vertex(Label::new(0)); // hub, vertex 0
        d.add_vertices(n as usize, Label::new(1)); // leaves 1..=n
        let (xs, ys) = (100u32, 172u32); // 17 200 dilution rows > 31 * n
        d.add_vertices(xs as usize, Label::new(0)); // n+1 ..= n+xs
        d.add_vertices(ys as usize, Label::new(1)); // n+xs+1 ..= n+xs+ys
        for x in n + 1..=n + xs {
            for y in n + xs + 1..=n + xs + ys {
                d.insert_hyperedge(vec![x, y]).unwrap();
            }
        }
        for leaf in 1..=n {
            d.insert_hyperedge(vec![0, leaf]).unwrap();
        }
        let rebuild_with_hub_leaves = |live: &dyn Fn(u32) -> bool| {
            let mut b = HypergraphBuilder::new();
            b.add_vertex(Label::new(0));
            b.add_vertices(n as usize, Label::new(1));
            b.add_vertices(xs as usize, Label::new(0));
            b.add_vertices(ys as usize, Label::new(1));
            for x in n + 1..=n + xs {
                for y in n + xs + 1..=n + xs + ys {
                    b.add_edge(vec![x, y]).unwrap();
                }
            }
            for leaf in (1..=n).filter(|&l| live(l)) {
                b.add_edge(vec![0, leaf]).unwrap();
            }
            b.build().unwrap()
        };
        {
            let hub = &d.parts[0].index.cells[&0];
            assert_eq!(hub.len(), n as usize);
            let CellRepr::Packed { blocks, tail } = &hub.repr else {
                panic!("mid-density hub cell should be packed");
            };
            assert!(blocks.num_blocks() >= 2, "full spans sealed into blocks");
            assert!(tail.len() < BLOCK_LEN, "tail stays under one span");
            assert_eq!(blocks.len() + tail.len(), n as usize);
        }
        // Snapshot equals a fresh build (freeze decodes packed cells and
        // from_sorted_postings re-chooses the canonical representation).
        let snap = d.snapshot();
        assert_eq!(*snap.graph, rebuild_with_hub_leaves(&|_| true));

        // Block-interior deletes: still packed at first, byte-equal decode.
        let mut gone: std::collections::BTreeSet<u32> = std::collections::BTreeSet::new();
        for leaf in (2..=2 * PACKED_CHURN_MIN).step_by(2) {
            assert!(d.delete_hyperedge(&[0, leaf]).unwrap());
            gone.insert(leaf);
        }
        {
            let hub = &d.parts[0].index.cells[&0];
            assert_eq!(hub.len(), (n - PACKED_CHURN_MIN) as usize);
            assert!(
                matches!(hub.repr, CellRepr::Packed { .. }),
                "moderate churn keeps the packed representation"
            );
        }

        // Drive churn past the pathological threshold: delete until the
        // surviving length is at most twice the block-interior churn.
        let mut deleted = PACKED_CHURN_MIN;
        let mut leaf = 1;
        while (n - deleted) as usize > 2 * deleted as usize {
            assert!(d.delete_hyperedge(&[0, leaf]).unwrap());
            gone.insert(leaf);
            leaf += 2;
            deleted += 1;
        }
        assert!(
            matches!(d.parts[0].index.cells[&0].repr, CellRepr::List(_)),
            "pathological churn demotes the packed cell to a list"
        );
        // The snapshot must still equal a fresh rebuild after the fallback.
        let snap = d.snapshot();
        assert_eq!(
            *snap.graph,
            rebuild_with_hub_leaves(&|l| !gone.contains(&l))
        );
    }

    #[test]
    fn compaction_threshold_keeps_state_consistent() {
        let mut d = DynamicHypergraph::new();
        d.add_vertices(300, Label::new(0));
        let mut edges: Vec<Vec<u32>> = Vec::new();
        for i in 0..149u32 {
            let e = vec![2 * i, 2 * i + 1];
            d.insert_hyperedge(e.clone()).unwrap();
            edges.push(e);
        }
        // Delete enough to cross COMPACT_MIN_DEAD and the 50% ratio.
        for e in edges.drain(..80) {
            d.delete_hyperedge(&e).unwrap();
        }
        // The threshold fired mid-stream: tombstones were reclaimed at
        // least once, so fewer than the 80 deletions remain as dead rows.
        assert!(d.parts[0].dead < 80, "compaction ran");
        let snap = d.snapshot();
        let labels = vec![Label::new(0); 300];
        assert_eq!(*snap.graph, rebuild(&labels, &edges));
    }

    #[test]
    fn duplicate_and_invalid_edges_behave_like_the_builder() {
        let mut d = DynamicHypergraph::new();
        d.add_vertices(3, Label::new(0));
        assert!(d.insert_hyperedge(vec![0, 1]).unwrap().is_some());
        assert!(d.insert_hyperedge(vec![1, 0]).unwrap().is_none());
        assert!(d.insert_hyperedge(vec![2, 2]).unwrap().is_some());
        assert!(matches!(
            d.insert_hyperedge(vec![]),
            Err(HypergraphError::EmptyHyperedge { .. })
        ));
        assert!(matches!(
            d.insert_hyperedge(vec![0, 9]),
            Err(HypergraphError::UnknownVertex { vertex: 9, .. })
        ));
        assert_eq!(d.num_edges(), 2);
        assert!(d.contains_edge(&[0, 1]) && d.contains_edge(&[2]));
    }

    #[test]
    fn update_op_round_trips_through_text() {
        let ops = vec![
            UpdateOp::AddVertex(Label::new(5)),
            UpdateOp::Insert(vec![0, 4, 7]),
            UpdateOp::Delete(vec![0, 4, 7]),
        ];
        let text = write_update_stream(&ops);
        assert_eq!(parse_update_stream(&text).unwrap(), ops);
        assert_eq!(
            parse_update_stream("# comment\n\n+ 1 2\n").unwrap(),
            vec![UpdateOp::Insert(vec![1, 2])]
        );
        assert!(parse_update_stream("x 1\n").is_err());
        assert!(parse_update_stream("+\n").is_err());
        assert!(parse_update_stream("v 1 2\n").is_err());
        assert!(parse_update_stream("+ a\n").is_err());
    }

    #[test]
    fn apply_replays_a_stream() {
        let mut d = DynamicHypergraph::new();
        let ops = parse_update_stream("v 0\nv 0\nv 1\n+ 0 1\n+ 1 2\n- 0 1\n").unwrap();
        for op in &ops {
            d.apply(op).unwrap();
        }
        assert_eq!((d.num_vertices(), d.num_edges()), (3, 1));
        // Replaying the deletes/duplicates is a no-op, not an error.
        assert!(!d.apply(&UpdateOp::Delete(vec![0, 1])).unwrap());
        assert!(!d.apply(&UpdateOp::Insert(vec![1, 2])).unwrap());
    }

    #[test]
    fn from_hypergraph_round_trips() {
        let labels: Vec<Label> = [0u32, 1, 0, 1].map(Label::new).to_vec();
        let edges = vec![vec![0, 1], vec![2, 3], vec![0, 2]];
        let base = rebuild(&labels, &edges);
        let mut d = DynamicHypergraph::from_hypergraph(&base);
        assert_eq!(d.epoch(), 0);
        let snap = d.snapshot();
        assert_eq!(*snap.graph, base);
    }
}
