//! Strongly-typed identifiers for vertices, hyperedges, labels and
//! signatures.
//!
//! All identifiers are `u32` newtypes: hypergraphs in the paper's evaluation
//! reach millions of hyperedges but stay far below `u32::MAX`, and compact
//! ids keep posting lists half the size of `usize`-based ones, which directly
//! speeds up the set operations at the heart of candidate generation.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an id from a raw `u32`.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the id as a `usize`, for indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id overflow: more than u32::MAX entities"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            #[inline]
            fn from(id: $name) -> u32 {
                id.0
            }
        }
    };
}

id_type!(
    /// Identifier of a vertex in a hypergraph (`v0`, `v1`, … in the paper).
    VertexId,
    "v"
);
id_type!(
    /// Identifier of a hyperedge in a hypergraph (`e0`, `e1`, … in the paper).
    EdgeId,
    "e"
);
id_type!(
    /// A vertex label drawn from the label alphabet Σ.
    Label,
    "L"
);
id_type!(
    /// Identifier of an interned hyperedge signature (a partition id).
    SignatureId,
    "S"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_raw() {
        let v = VertexId::new(7);
        assert_eq!(v.raw(), 7);
        assert_eq!(v.index(), 7);
        assert_eq!(VertexId::from_index(7), v);
        assert_eq!(u32::from(v), 7);
        assert_eq!(VertexId::from(7u32), v);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(VertexId::new(3).to_string(), "v3");
        assert_eq!(EdgeId::new(4).to_string(), "e4");
        assert_eq!(Label::new(5).to_string(), "L5");
        assert_eq!(SignatureId::new(6).to_string(), "S6");
        assert_eq!(format!("{:?}", VertexId::new(3)), "v3");
    }

    #[test]
    fn ordering_follows_raw_values() {
        assert!(EdgeId::new(1) < EdgeId::new(2));
        assert_eq!(Label::new(9).max(Label::new(4)), Label::new(9));
    }

    #[test]
    #[should_panic(expected = "id overflow")]
    fn from_index_overflow_panics() {
        let _ = VertexId::from_index(u32::MAX as usize + 1);
    }
}
