//! Hyperedge signatures (paper Definition IV.1).
//!
//! The *signature* of a hyperedge is the multiset of the labels of its
//! vertices. HGMatch partitions the data hypergraph into one hyperedge table
//! per distinct signature, so candidate search for a query hyperedge only
//! ever touches the single table whose signature matches (Observation V.1).
//!
//! A multiset of labels is canonically represented as a *sorted* boxed slice,
//! which makes equality, hashing and ordering trivially consistent.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fxhash::FxHashMap;
use crate::ids::{Label, SignatureId};

/// A hyperedge signature: the multiset of vertex labels in a hyperedge,
/// canonicalised as a sorted sequence.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Signature {
    labels: Box<[Label]>,
}

impl Signature {
    /// Builds a signature from an arbitrary label sequence (sorted here).
    pub fn new(mut labels: Vec<Label>) -> Self {
        labels.sort_unstable();
        Self {
            labels: labels.into_boxed_slice(),
        }
    }

    /// Builds a signature from labels already known to be sorted.
    ///
    /// # Panics
    /// Panics in debug builds if `labels` is not sorted.
    pub fn from_sorted(labels: Vec<Label>) -> Self {
        debug_assert!(
            labels.windows(2).all(|w| w[0] <= w[1]),
            "labels must be sorted"
        );
        Self {
            labels: labels.into_boxed_slice(),
        }
    }

    /// The arity (hyperedge size) this signature describes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.labels.len()
    }

    /// The sorted labels of this signature.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Multiplicity of `label` in the multiset.
    pub fn count_of(&self, label: Label) -> usize {
        // Labels are sorted: find the run via binary search.
        match self.labels.binary_search(&label) {
            Err(_) => 0,
            Ok(pos) => {
                let mut lo = pos;
                while lo > 0 && self.labels[lo - 1] == label {
                    lo -= 1;
                }
                let mut hi = pos + 1;
                while hi < self.labels.len() && self.labels[hi] == label {
                    hi += 1;
                }
                hi - lo
            }
        }
    }

    /// Iterates over `(label, multiplicity)` pairs in ascending label order.
    pub fn label_counts(&self) -> impl Iterator<Item = (Label, usize)> + '_ {
        LabelRuns {
            labels: &self.labels,
            pos: 0,
        }
    }
}

struct LabelRuns<'a> {
    labels: &'a [Label],
    pos: usize,
}

impl Iterator for LabelRuns<'_> {
    type Item = (Label, usize);

    fn next(&mut self) -> Option<(Label, usize)> {
        if self.pos >= self.labels.len() {
            return None;
        }
        let label = self.labels[self.pos];
        let start = self.pos;
        while self.pos < self.labels.len() && self.labels[self.pos] == label {
            self.pos += 1;
        }
        Some((label, self.pos - start))
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

/// Interns signatures, assigning each distinct multiset a dense
/// [`SignatureId`] that doubles as the partition index.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SignatureInterner {
    by_signature: FxHashMap<Signature, SignatureId>,
    signatures: Vec<Signature>,
}

impl SignatureInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `signature`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, signature: Signature) -> SignatureId {
        if let Some(&id) = self.by_signature.get(&signature) {
            return id;
        }
        let id = SignatureId::from_index(self.signatures.len());
        self.signatures.push(signature.clone());
        self.by_signature.insert(signature, id);
        id
    }

    /// Looks up an already-interned signature without inserting.
    pub fn get(&self, signature: &Signature) -> Option<SignatureId> {
        self.by_signature.get(signature).copied()
    }

    /// Resolves an id back to its signature.
    pub fn resolve(&self, id: SignatureId) -> &Signature {
        &self.signatures[id.index()]
    }

    /// Number of distinct signatures interned so far.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Whether no signatures have been interned.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// Iterates all interned signatures with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (SignatureId, &Signature)> {
        self.signatures
            .iter()
            .enumerate()
            .map(|(i, s)| (SignatureId::from_index(i), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(raw: u32) -> Label {
        Label::new(raw)
    }

    #[test]
    fn new_sorts_labels() {
        let s = Signature::new(vec![l(3), l(1), l(2), l(1)]);
        assert_eq!(s.labels(), &[l(1), l(1), l(2), l(3)]);
        assert_eq!(s.arity(), 4);
    }

    #[test]
    fn equality_is_multiset_equality() {
        let a = Signature::new(vec![l(1), l(2), l(1)]);
        let b = Signature::new(vec![l(2), l(1), l(1)]);
        let c = Signature::new(vec![l(1), l(2), l(2)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn count_of_runs() {
        let s = Signature::new(vec![l(1), l(1), l(1), l(5), l(7), l(7)]);
        assert_eq!(s.count_of(l(1)), 3);
        assert_eq!(s.count_of(l(5)), 1);
        assert_eq!(s.count_of(l(7)), 2);
        assert_eq!(s.count_of(l(9)), 0);
    }

    #[test]
    fn label_counts_iterates_runs() {
        let s = Signature::new(vec![l(2), l(2), l(4), l(9), l(9), l(9)]);
        let runs: Vec<_> = s.label_counts().collect();
        assert_eq!(runs, vec![(l(2), 2), (l(4), 1), (l(9), 3)]);
    }

    #[test]
    fn empty_signature() {
        let s = Signature::new(vec![]);
        assert_eq!(s.arity(), 0);
        assert_eq!(s.label_counts().count(), 0);
        assert_eq!(s.count_of(l(0)), 0);
    }

    #[test]
    fn interner_assigns_dense_ids() {
        let mut interner = SignatureInterner::new();
        let ab = Signature::new(vec![l(0), l(1)]);
        let aa = Signature::new(vec![l(0), l(0)]);
        let id0 = interner.intern(ab.clone());
        let id1 = interner.intern(aa.clone());
        let id0_again = interner.intern(Signature::new(vec![l(1), l(0)]));
        assert_eq!(id0, SignatureId::new(0));
        assert_eq!(id1, SignatureId::new(1));
        assert_eq!(id0, id0_again);
        assert_eq!(interner.len(), 2);
        assert_eq!(interner.resolve(id0), &ab);
        assert_eq!(interner.resolve(id1), &aa);
        assert_eq!(interner.get(&ab), Some(id0));
        assert_eq!(interner.get(&Signature::new(vec![l(9)])), None);
    }

    #[test]
    fn interner_iter_yields_all() {
        let mut interner = SignatureInterner::new();
        interner.intern(Signature::new(vec![l(0)]));
        interner.intern(Signature::new(vec![l(1)]));
        let ids: Vec<_> = interner.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![SignatureId::new(0), SignatureId::new(1)]);
    }

    #[test]
    fn debug_format() {
        let s = Signature::new(vec![l(1), l(0)]);
        assert_eq!(format!("{s:?}"), "{L0,L1}");
    }
}
