//! A local implementation of the Fx hash algorithm (as popularised by rustc
//! and the `rustc-hash` crate).
//!
//! The matching engine hashes small integer keys (labels, ids, signature
//! bytes) on hot paths — signature interning during load, vertex-profile
//! multiset comparison during validation. SipHash's HashDoS protection buys
//! nothing for an analytical engine that never hashes untrusted keys into a
//! long-lived table, so we follow the Rust Performance Book's guidance and
//! use the much faster Fx algorithm. Implemented locally because only a fixed
//! set of third-party crates is available offline (see DESIGN.md §7).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx algorithm (64-bit variant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for trusted integer-like keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (chunk, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_le_bytes(chunk.try_into().unwrap())));
            bytes = rest;
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the Fx algorithm.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the Fx algorithm.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Hashes a single `u64` with the Fx algorithm — handy for building compact
/// fingerprints without constructing a hasher at the call site.
#[inline]
pub fn hash_u64(word: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write_u64(word);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
    }

    #[test]
    fn distinguishes_values() {
        assert_ne!(hash_of(&1u32), hash_of(&2u32));
        assert_ne!(hash_of(&[1u32, 2]), hash_of(&[2u32, 1]));
    }

    #[test]
    fn handles_all_byte_lengths() {
        // Exercise the 8-byte, 4-byte and residual paths of `write`.
        for len in 0..=17 {
            let bytes: Vec<u8> = (0..len).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let first = h.finish();
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(first, h2.finish(), "len {len} not deterministic");
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        assert_eq!(map.get(&1), Some(&"one"));

        let mut set: FxHashSet<u64> = FxHashSet::default();
        set.insert(99);
        assert!(set.contains(&99));
    }

    #[test]
    fn hash_u64_helper_matches_hasher() {
        let mut h = FxHasher::default();
        h.write_u64(123);
        assert_eq!(hash_u64(123), h.finish());
    }
}
