//! The immutable, indexed data hypergraph (paper §IV).
//!
//! A [`Hypergraph`] is the product of offline preprocessing: vertex labels,
//! signature-partitioned hyperedge tables with inverted indices, a global
//! edge locator, and a global vertex→edge incidence CSR (used by the
//! match-by-vertex baselines and the IHS filter).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::ids::{EdgeId, Label, SignatureId, VertexId};
use crate::partition::Partition;
use crate::signature::{Signature, SignatureInterner};
use crate::stats::HypergraphStats;

/// Process-unique identity of one assembled snapshot.
///
/// Global edge ids are only meaningful *within* one snapshot — the dynamic
/// writer's compaction remaps them across epochs — so executor scratch
/// caches keyed by edge id (the expansion level stack) must be invalidated
/// whenever they are reused against a different snapshot, even one with
/// overlapping edge ids. Equality is intentionally always-true: snapshot
/// identity is not part of hypergraph *content*, and the dynamic
/// differential oracle's `snapshot == rebuild` check must keep comparing
/// content only.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SnapshotUid(u64);

impl SnapshotUid {
    fn fresh() -> Self {
        // Starts at 1 so 0 can mean "no snapshot yet" in caches.
        static NEXT: AtomicU64 = AtomicU64::new(1);
        Self(NEXT.fetch_add(1, Ordering::Relaxed))
    }
}

impl PartialEq for SnapshotUid {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// Where a global hyperedge lives: its partition and local row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EdgeLocation {
    /// Partition (signature) the edge belongs to.
    pub signature: SignatureId,
    /// Row inside the partition table.
    pub row: u32,
}

/// An immutable vertex-labelled hypergraph in HGMatch's partitioned layout.
///
/// Partitions are [`Arc`]-shared so that the dynamic snapshot path
/// ([`crate::dynamic`]) can produce a new consistent `Hypergraph` per epoch
/// while reusing every partition the writer did not touch (copy-on-write at
/// partition granularity).
#[derive(Debug, Clone, PartialEq)]
pub struct Hypergraph {
    pub(crate) labels: Vec<Label>,
    pub(crate) num_labels: u32,
    pub(crate) interner: SignatureInterner,
    pub(crate) partitions: Vec<Arc<Partition>>,
    pub(crate) locator: Vec<EdgeLocation>,
    /// Global incidence CSR: `incidence_offsets[v]..incidence_offsets[v+1]`
    /// indexes sorted global edge ids incident to vertex `v`.
    pub(crate) incidence_offsets: Vec<u64>,
    pub(crate) incidence_edges: Vec<u32>,
    /// `|adj(v)|` per vertex (number of distinct adjacent vertices),
    /// precomputed for the IHS filter.
    pub(crate) adj_counts: Vec<u32>,
    /// Process-unique snapshot identity (excluded from content equality).
    pub(crate) uid: SnapshotUid,
}

impl Hypergraph {
    /// Assembles a hypergraph from its partition tables and edge locator,
    /// deriving everything downstream of them: the label-alphabet size, the
    /// global incidence CSR and the per-vertex adjacency counts. Shared by
    /// the offline [`crate::builder::HypergraphBuilder`] and the dynamic
    /// snapshot path ([`crate::dynamic`]), so both produce identical
    /// derived state for identical partition content.
    pub(crate) fn assemble(
        labels: Vec<Label>,
        interner: SignatureInterner,
        partitions: Vec<Arc<Partition>>,
        locator: Vec<EdgeLocation>,
    ) -> Self {
        let num_labels = labels.iter().map(|l| l.raw() + 1).max().unwrap_or(0);

        // Global incidence CSR: vertex → sorted global edge ids.
        let mut degrees = vec![0u64; labels.len()];
        for p in &partitions {
            for (_, row) in p.iter_rows() {
                for &v in row {
                    degrees[v as usize] += 1;
                }
            }
        }
        let mut incidence_offsets = Vec::with_capacity(labels.len() + 1);
        incidence_offsets.push(0u64);
        for &d in &degrees {
            incidence_offsets.push(incidence_offsets.last().unwrap() + d);
        }
        let total = *incidence_offsets.last().unwrap() as usize;
        let mut incidence_edges = vec![0u32; total];
        let mut cursor = incidence_offsets[..labels.len()].to_vec();
        // Fill in ascending global edge order so per-vertex lists are sorted.
        let mut by_global: Vec<(EdgeId, SignatureId, u32)> = Vec::new();
        for p in &partitions {
            for (r, _) in p.iter_rows() {
                by_global.push((p.global_id(r), p.signature(), r));
            }
        }
        by_global.sort_unstable_by_key(|(g, _, _)| *g);
        for (g, sid, r) in by_global {
            for &v in partitions[sid.index()].row(r) {
                let c = &mut cursor[v as usize];
                incidence_edges[*c as usize] = g.raw();
                *c += 1;
            }
        }

        // |adj(v)| per vertex via sort+dedup of neighbour lists.
        let graph = Hypergraph {
            labels,
            num_labels,
            interner,
            partitions,
            locator,
            incidence_offsets,
            incidence_edges,
            adj_counts: Vec::new(),
            uid: SnapshotUid::fresh(),
        };
        let adj_counts = (0..graph.num_vertices())
            .map(|v| graph.adjacent_vertices(VertexId::from_index(v)).len() as u32)
            .collect();
        Hypergraph {
            adj_counts,
            ..graph
        }
    }

    /// Reassembles a hypergraph from fully serialized parts — the HGMB v2
    /// snapshot load path ([`crate::io`]). Unlike [`Hypergraph::assemble`],
    /// nothing is derived: the incidence CSR and adjacency counts arrive
    /// precomputed, so restore cost is deserialization alone (the ≥10×
    /// restore-vs-reindex win of DESIGN.md §17). The caller (the decoder)
    /// has already validated cross-structure invariants; only the label
    /// alphabet size and a fresh snapshot uid are computed here.
    pub(crate) fn from_serialized_parts(
        labels: Vec<Label>,
        interner: SignatureInterner,
        partitions: Vec<Arc<Partition>>,
        locator: Vec<EdgeLocation>,
        incidence_offsets: Vec<u64>,
        incidence_edges: Vec<u32>,
        adj_counts: Vec<u32>,
    ) -> Self {
        let num_labels = labels.iter().map(|l| l.raw() + 1).max().unwrap_or(0);
        Hypergraph {
            labels,
            num_labels,
            interner,
            partitions,
            locator,
            incidence_offsets,
            incidence_edges,
            adj_counts,
            uid: SnapshotUid::fresh(),
        }
    }

    /// Process-unique identity of this snapshot (never 0).
    ///
    /// Global edge ids are only comparable between hypergraphs with equal
    /// `uid`: the dynamic writer's compaction remaps ids across epochs, so
    /// caches keyed by edge id (e.g. the executors' expansion level stack)
    /// must reset when this changes. Two snapshots with identical content
    /// still have distinct uids; content equality is `==`.
    #[inline]
    pub fn uid(&self) -> u64 {
        self.uid.0
    }

    /// Number of vertices `|V(H)|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of hyperedges `|E(H)|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.locator.len()
    }

    /// Size of the label alphabet `|Σ|`.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.num_labels as usize
    }

    /// Label of a vertex.
    #[inline]
    pub fn label(&self, v: VertexId) -> Label {
        self.labels[v.index()]
    }

    /// All vertex labels, indexed by vertex id.
    #[inline]
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// The signature interner (signature ⇄ partition id).
    #[inline]
    pub fn interner(&self) -> &SignatureInterner {
        &self.interner
    }

    /// All signature partitions, indexed by [`SignatureId`].
    #[inline]
    pub fn partitions(&self) -> &[Arc<Partition>] {
        &self.partitions
    }

    /// The partition for `id`.
    #[inline]
    pub fn partition(&self, id: SignatureId) -> &Partition {
        &self.partitions[id.index()]
    }

    /// The partition for `id` as its shared handle (the dynamic snapshot
    /// path reuses untouched partitions across epochs through this).
    #[inline]
    pub(crate) fn partition_arc(&self, id: SignatureId) -> &Arc<Partition> {
        &self.partitions[id.index()]
    }

    /// Finds the partition holding hyperedges with `signature`, if any.
    pub fn partition_of(&self, signature: &Signature) -> Option<&Partition> {
        self.interner.get(signature).map(|id| self.partition(id))
    }

    /// `Card(eq, H)`: number of data hyperedges whose signature equals
    /// `signature` (Definition V.2). `O(1)` after an interner lookup.
    pub fn cardinality(&self, signature: &Signature) -> usize {
        self.partition_of(signature).map_or(0, Partition::len)
    }

    /// Where global edge `e` lives.
    #[inline]
    pub fn locate(&self, e: EdgeId) -> EdgeLocation {
        self.locator[e.index()]
    }

    /// Sorted vertex list of global edge `e`.
    #[inline]
    pub fn edge_vertices(&self, e: EdgeId) -> &[u32] {
        let loc = self.locate(e);
        self.partitions[loc.signature.index()].row(loc.row)
    }

    /// Arity of global edge `e`.
    #[inline]
    pub fn edge_arity(&self, e: EdgeId) -> usize {
        let loc = self.locate(e);
        self.partitions[loc.signature.index()].arity() as usize
    }

    /// Signature id of global edge `e`.
    #[inline]
    pub fn edge_signature(&self, e: EdgeId) -> SignatureId {
        self.locate(e).signature
    }

    /// Sorted global edge ids incident to vertex `v` — `he(v)`.
    #[inline]
    pub fn incident_edges(&self, v: VertexId) -> &[u32] {
        let start = self.incidence_offsets[v.index()] as usize;
        let end = self.incidence_offsets[v.index() + 1] as usize;
        &self.incidence_edges[start..end]
    }

    /// Degree `d(v) = |he(v)|`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.incidence_offsets[v.index() + 1] - self.incidence_offsets[v.index()]) as usize
    }

    /// `|he_a(v)|`: number of incident hyperedges of arity `a`.
    pub fn degree_with_arity(&self, v: VertexId, arity: usize) -> usize {
        self.incident_edges(v)
            .iter()
            .filter(|&&e| self.edge_arity(EdgeId::new(e)) == arity)
            .count()
    }

    /// `|he(v, s)|`: number of incident hyperedges with signature id `s`.
    #[inline]
    pub fn degree_with_signature(&self, v: VertexId, s: SignatureId) -> usize {
        self.partitions[s.index()].incident_posting(v.raw()).len()
    }

    /// Number of distinct adjacent vertices `|adj(v)|`.
    #[inline]
    pub fn adjacent_count(&self, v: VertexId) -> usize {
        self.adj_counts[v.index()] as usize
    }

    /// Collects the distinct adjacent vertices of `v`, sorted.
    pub fn adjacent_vertices(&self, v: VertexId) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        for &e in self.incident_edges(v) {
            out.extend_from_slice(self.edge_vertices(EdgeId::new(e)));
        }
        out.sort_unstable();
        out.dedup();
        if let Ok(pos) = out.binary_search(&v.raw()) {
            out.remove(pos);
        }
        out
    }

    /// Iterates all global edges as `(EdgeId, vertex list)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (EdgeId, &[u32])> {
        (0..self.num_edges()).map(move |i| {
            let e = EdgeId::from_index(i);
            (e, self.edge_vertices(e))
        })
    }

    /// Average arity `a_H`.
    pub fn average_arity(&self) -> f64 {
        if self.num_edges() == 0 {
            return 0.0;
        }
        let total: usize = self
            .partitions
            .iter()
            .map(|p| p.len() * p.arity() as usize)
            .sum();
        total as f64 / self.num_edges() as f64
    }

    /// Maximum arity `a_max`.
    pub fn max_arity(&self) -> usize {
        self.partitions
            .iter()
            .map(|p| p.arity() as usize)
            .max()
            .unwrap_or(0)
    }

    /// Computes summary statistics (the columns of the paper's Table II).
    pub fn stats(&self) -> HypergraphStats {
        HypergraphStats::compute(self)
    }

    /// Total bytes of hyperedge tables (the "graph size" of Fig. 7).
    pub fn table_size_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.table_size_bytes()).sum()
    }

    /// Total bytes of inverted indices (the "index size" of Fig. 7).
    pub fn index_size_bytes(&self) -> usize {
        self.partitions.iter().map(|p| p.index_size_bytes()).sum()
    }

    /// Tests whether a sorted vertex set exists as a hyperedge, returning its
    /// global id. Used by the match-by-vertex baselines to verify hyperedge
    /// constraints (Theorem III.2).
    pub fn find_edge(&self, sorted_vertices: &[u32]) -> Option<EdgeId> {
        if sorted_vertices.is_empty()
            || sorted_vertices
                .iter()
                .any(|&v| v as usize >= self.labels.len())
        {
            // Unknown vertices cannot be part of any edge (snapshots of a
            // growing dynamic graph may carry vertices older ones lack).
            return None;
        }
        let signature = Signature::new(
            sorted_vertices
                .iter()
                .map(|&v| self.labels[v as usize])
                .collect(),
        );
        let partition = self.partition_of(&signature)?;
        // Probe the partition's inverted index via the least-frequent vertex
        // (decoding its posting if the index stored it compressed).
        let mut best: Option<crate::inverted::Posting<'_>> = None;
        for &v in sorted_vertices {
            let posting = partition.incident_posting(v);
            if posting.is_empty() {
                return None;
            }
            if best.is_none_or(|b| posting.len() < b.len()) {
                best = Some(posting);
            }
        }
        best?.to_sorted().into_iter().find_map(|row| {
            (partition.row(row) == sorted_vertices).then(|| partition.global_id(row))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    /// Builds the data hypergraph of the paper's Fig. 1b.
    pub(crate) fn paper_data_graph() -> Hypergraph {
        // Labels: A=0, B=1, C=2.
        // v0:A v1:C v2:A v3:A v4:B v5:C v6:A
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        // e1..e6 (0-indexed e0..e5 here):
        b.add_edge(vec![2, 4]).unwrap(); // e1 {v2,v4}
        b.add_edge(vec![4, 6]).unwrap(); // e2 {v4,v6}
        b.add_edge(vec![0, 1, 2]).unwrap(); // e3 {v0,v1,v2}
        b.add_edge(vec![3, 5, 6]).unwrap(); // e4 {v3,v5,v6}
        b.add_edge(vec![0, 1, 4, 6]).unwrap(); // e5 {v0,v1,v4,v6}
        b.add_edge(vec![2, 3, 4, 5]).unwrap(); // e6 {v2,v3,v4,v5}
        b.build().unwrap()
    }

    #[test]
    fn fig1_partitions_match_table1() {
        let h = paper_data_graph();
        assert_eq!(h.num_vertices(), 7);
        assert_eq!(h.num_edges(), 6);
        assert_eq!(h.partitions().len(), 3);

        // {A,B} partition holds e1, e2.
        let ab = Signature::new(vec![Label::new(0), Label::new(1)]);
        let p = h.partition_of(&ab).expect("AB partition");
        assert_eq!(p.len(), 2);
        assert_eq!(h.cardinality(&ab), 2);

        // {A,A,C} partition holds e3, e4.
        let aac = Signature::new(vec![Label::new(0), Label::new(0), Label::new(2)]);
        assert_eq!(h.cardinality(&aac), 2);

        // {A,A,B,C} partition holds e5, e6.
        let aabc = Signature::new(vec![
            Label::new(0),
            Label::new(0),
            Label::new(1),
            Label::new(2),
        ]);
        assert_eq!(h.cardinality(&aabc), 2);

        // Missing signature has zero cardinality.
        let none = Signature::new(vec![Label::new(1), Label::new(1)]);
        assert_eq!(h.cardinality(&none), 0);
    }

    #[test]
    fn incidence_and_degrees() {
        let h = paper_data_graph();
        // v4 (B) is in e1, e2, e5, e6 → global ids 0, 1, 4, 5.
        assert_eq!(h.incident_edges(VertexId::new(4)), &[0, 1, 4, 5]);
        assert_eq!(h.degree(VertexId::new(4)), 4);
        assert_eq!(h.degree_with_arity(VertexId::new(4), 2), 2);
        assert_eq!(h.degree_with_arity(VertexId::new(4), 4), 2);
        assert_eq!(h.degree_with_arity(VertexId::new(4), 3), 0);
    }

    #[test]
    fn adjacency() {
        let h = paper_data_graph();
        // v0 is in e3 {v0,v1,v2} and e5 {v0,v1,v4,v6} → adj = {1,2,4,6}.
        assert_eq!(h.adjacent_vertices(VertexId::new(0)), vec![1, 2, 4, 6]);
        assert_eq!(h.adjacent_count(VertexId::new(0)), 4);
    }

    #[test]
    fn edge_lookup() {
        let h = paper_data_graph();
        assert_eq!(h.edge_vertices(EdgeId::new(2)), &[0, 1, 2]);
        assert_eq!(h.edge_arity(EdgeId::new(4)), 4);
        assert_eq!(h.find_edge(&[2, 4]), Some(EdgeId::new(0)));
        assert_eq!(h.find_edge(&[0, 1, 4, 6]), Some(EdgeId::new(4)));
        assert_eq!(h.find_edge(&[0, 2]), None); // same labels as no edge
        assert_eq!(h.find_edge(&[]), None);
        assert_eq!(h.find_edge(&[0, 3]), None); // signature exists ({A,A})? no
    }

    #[test]
    fn arity_summaries() {
        let h = paper_data_graph();
        assert_eq!(h.max_arity(), 4);
        let avg = h.average_arity();
        assert!((avg - 3.0).abs() < 1e-9, "avg arity {avg}");
    }

    #[test]
    fn degree_with_signature_matches_partition_postings() {
        let h = paper_data_graph();
        let aabc = Signature::new(vec![
            Label::new(0),
            Label::new(0),
            Label::new(1),
            Label::new(2),
        ]);
        let sid = h.interner().get(&aabc).unwrap();
        assert_eq!(h.degree_with_signature(VertexId::new(4), sid), 2);
        assert_eq!(h.degree_with_signature(VertexId::new(0), sid), 1);
    }
}
