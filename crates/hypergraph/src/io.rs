//! Hypergraph serialisation: a Benson-style text format and a compact
//! binary format.
//!
//! The paper's datasets come from Benson's hypergraph collection, which
//! ships one file of vertex labels (line `i` = label of vertex `i`) and one
//! file of hyperedges (one comma-separated vertex list per line). We
//! implement that format for interchange, plus a length-prefixed binary
//! format (magic `HGMB`) for fast reloads.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::builder::HypergraphBuilder;
use crate::error::{HypergraphError, Result};
use crate::hypergraph::Hypergraph;
use crate::ids::Label;

/// Magic bytes of the binary format.
const MAGIC: &[u8; 4] = b"HGMB";
/// Current binary format version.
const VERSION: u32 = 1;

/// Parses vertex labels from a reader: one non-negative integer label per
/// line; blank lines and `#` comments are skipped.
pub fn parse_labels<R: BufRead>(reader: R) -> Result<Vec<Label>> {
    let mut labels = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value: u32 = trimmed.parse().map_err(|_| HypergraphError::Parse {
            line: lineno + 1,
            message: format!("invalid label {trimmed:?}"),
        })?;
        labels.push(Label::new(value));
    }
    Ok(labels)
}

/// Parses hyperedges from a reader: one hyperedge per line as vertex ids
/// separated by commas and/or whitespace; blank lines and `#` comments are
/// skipped.
pub fn parse_edges<R: BufRead>(reader: R) -> Result<Vec<Vec<u32>>> {
    let mut edges = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut edge = Vec::new();
        for token in trimmed.split(|c: char| c == ',' || c.is_whitespace()) {
            if token.is_empty() {
                continue;
            }
            let v: u32 = token.parse().map_err(|_| HypergraphError::Parse {
                line: lineno + 1,
                message: format!("invalid vertex id {token:?}"),
            })?;
            edge.push(v);
        }
        if edge.is_empty() {
            return Err(HypergraphError::Parse {
                line: lineno + 1,
                message: "hyperedge line contains no vertices".into(),
            });
        }
        edges.push(edge);
    }
    Ok(edges)
}

/// Builds a hypergraph from label and edge readers.
pub fn read_text<L: BufRead, E: BufRead>(labels: L, edges: E) -> Result<Hypergraph> {
    let labels = parse_labels(labels)?;
    let edges = parse_edges(edges)?;
    let mut builder = HypergraphBuilder::new();
    for label in labels {
        builder.add_vertex(label);
    }
    for edge in edges {
        builder.add_edge(edge)?;
    }
    builder.build()
}

/// Loads a hypergraph from a labels file and an edges file on disk.
pub fn load_text(labels_path: &Path, edges_path: &Path) -> Result<Hypergraph> {
    read_text(
        BufReader::new(File::open(labels_path)?),
        BufReader::new(File::open(edges_path)?),
    )
}

/// Writes a hypergraph to label and edge writers in the text format.
pub fn write_text<L: Write, E: Write>(h: &Hypergraph, mut labels: L, mut edges: E) -> Result<()> {
    for l in h.labels() {
        writeln!(labels, "{}", l.raw())?;
    }
    for (_, vs) in h.iter_edges() {
        let joined: Vec<String> = vs.iter().map(u32::to_string).collect();
        writeln!(edges, "{}", joined.join(","))?;
    }
    Ok(())
}

/// Saves a hypergraph to a labels file and an edges file on disk.
pub fn save_text(h: &Hypergraph, labels_path: &Path, edges_path: &Path) -> Result<()> {
    write_text(
        h,
        BufWriter::new(File::create(labels_path)?),
        BufWriter::new(File::create(edges_path)?),
    )
}

/// Encodes a hypergraph in the binary format.
pub fn encode_binary(h: &Hypergraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + h.num_vertices() * 4 + h.num_edges() * 8 + h.table_size_bytes(),
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(h.num_vertices() as u32);
    for l in h.labels() {
        buf.put_u32_le(l.raw());
    }
    buf.put_u32_le(h.num_edges() as u32);
    for (_, vs) in h.iter_edges() {
        buf.put_u32_le(vs.len() as u32);
        for &v in vs {
            buf.put_u32_le(v);
        }
    }
    buf.freeze()
}

/// Decodes a hypergraph from the binary format.
pub fn decode_binary(mut data: &[u8]) -> Result<Hypergraph> {
    fn need(data: &[u8], n: usize, what: &str) -> Result<()> {
        if data.remaining() < n {
            return Err(HypergraphError::Corrupt(format!(
                "truncated while reading {what}"
            )));
        }
        Ok(())
    }

    need(data, 8, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(HypergraphError::Corrupt("bad magic".into()));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(HypergraphError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }

    need(data, 4, "vertex count")?;
    let nv = data.get_u32_le() as usize;
    need(data, nv * 4, "labels")?;
    let mut builder = HypergraphBuilder::new();
    for _ in 0..nv {
        builder.add_vertex(Label::new(data.get_u32_le()));
    }

    need(data, 4, "edge count")?;
    let ne = data.get_u32_le() as usize;
    for _ in 0..ne {
        need(data, 4, "edge arity")?;
        let arity = data.get_u32_le() as usize;
        need(data, arity * 4, "edge vertices")?;
        let mut edge = Vec::with_capacity(arity);
        for _ in 0..arity {
            edge.push(data.get_u32_le());
        }
        builder.add_edge(edge)?;
    }
    if data.has_remaining() {
        return Err(HypergraphError::Corrupt(format!(
            "{} trailing bytes after hypergraph",
            data.remaining()
        )));
    }
    builder.build()
}

/// Saves a hypergraph in the binary format.
pub fn save_binary(h: &Hypergraph, path: &Path) -> Result<()> {
    let mut file = BufWriter::new(File::create(path)?);
    file.write_all(&encode_binary(h))?;
    Ok(())
}

/// Loads a hypergraph from the binary format.
pub fn load_binary(path: &Path) -> Result<Hypergraph> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    decode_binary(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;
    use crate::ids::EdgeId;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let h = sample();
        let mut labels = Vec::new();
        let mut edges = Vec::new();
        write_text(&h, &mut labels, &mut edges).unwrap();
        let h2 = read_text(labels.as_slice(), edges.as_slice()).unwrap();
        assert_eq!(h.num_vertices(), h2.num_vertices());
        assert_eq!(h.num_edges(), h2.num_edges());
        for i in 0..h.num_edges() {
            assert_eq!(
                h.edge_vertices(EdgeId::from_index(i)),
                h2.edge_vertices(EdgeId::from_index(i))
            );
        }
        assert_eq!(h.labels(), h2.labels());
    }

    #[test]
    fn parse_accepts_comments_and_mixed_separators() {
        let labels = parse_labels("# labels\n0\n\n1\n".as_bytes()).unwrap();
        assert_eq!(labels, vec![Label::new(0), Label::new(1)]);
        let edges = parse_edges("# edges\n0, 1\n0\t1 , 2\n".as_bytes()).unwrap();
        assert_eq!(edges, vec![vec![0, 1], vec![0, 1, 2]]);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = parse_labels("zero\n".as_bytes()).unwrap_err();
        assert!(matches!(err, HypergraphError::Parse { line: 1, .. }));
        let err = parse_edges("1,x\n".as_bytes()).unwrap_err();
        assert!(matches!(err, HypergraphError::Parse { line: 1, .. }));
        let err = parse_edges(",,\n".as_bytes()).unwrap_err();
        assert!(matches!(err, HypergraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn binary_roundtrip() {
        let h = sample();
        let bytes = encode_binary(&h);
        let h2 = decode_binary(&bytes).unwrap();
        assert_eq!(h.num_vertices(), h2.num_vertices());
        assert_eq!(h.num_edges(), h2.num_edges());
        assert_eq!(h.labels(), h2.labels());
        for i in 0..h.num_edges() {
            assert_eq!(
                h.edge_vertices(EdgeId::from_index(i)),
                h2.edge_vertices(EdgeId::from_index(i))
            );
        }
    }

    #[test]
    fn binary_rejects_corruption() {
        let h = sample();
        let bytes = encode_binary(&h);

        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            decode_binary(&bad),
            Err(HypergraphError::Corrupt(_))
        ));

        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 0xFF;
        assert!(matches!(
            decode_binary(&bad),
            Err(HypergraphError::Corrupt(_))
        ));

        // Truncation at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                decode_binary(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }

        // Trailing junk.
        let mut bad = bytes.to_vec();
        bad.push(0);
        assert!(matches!(
            decode_binary(&bad),
            Err(HypergraphError::Corrupt(_))
        ));
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join("hgmatch-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let h = sample();

        let lp = dir.join("labels.txt");
        let ep = dir.join("edges.txt");
        save_text(&h, &lp, &ep).unwrap();
        let h2 = load_text(&lp, &ep).unwrap();
        assert_eq!(h.num_edges(), h2.num_edges());

        let bp = dir.join("graph.hgmb");
        save_binary(&h, &bp).unwrap();
        let h3 = load_binary(&bp).unwrap();
        assert_eq!(h.num_edges(), h3.num_edges());

        std::fs::remove_dir_all(&dir).ok();
    }
}
