//! Hypergraph serialisation: a Benson-style text format and the `HGMB`
//! binary formats.
//!
//! The paper's datasets come from Benson's hypergraph collection, which
//! ships one file of vertex labels (line `i` = label of vertex `i`) and one
//! file of hyperedges (one comma-separated vertex list per line). We
//! implement that format for interchange, plus two binary formats behind
//! the shared magic `HGMB`:
//!
//! * **v1** — length-prefixed labels and edge lists only; loading rebuilds
//!   the index from scratch. Kept for interchange.
//! * **v2** — the *snapshot* format (DESIGN.md §17): a versioned sequence
//!   of length-prefixed, individually CRC-32-checksummed sections that
//!   serialise the fully built index — postings in whichever
//!   list/bitmap/compressed representation each key carries, partition
//!   stats, signatures, the edge locator, the incidence CSR and adjacency
//!   counts — closed by a whole-file checksum. Loading reconstructs a
//!   serving-ready [`Hypergraph`] without re-indexing.
//!
//! Every decode path returns typed errors ([`HypergraphError::BadMagic`],
//! [`HypergraphError::UnsupportedVersion`],
//! [`HypergraphError::ChecksumMismatch`], [`HypergraphError::Corrupt`]) on
//! malformed input — truncation at any offset and bit flips anywhere must
//! never panic or misparse.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::builder::HypergraphBuilder;
use crate::error::{HypergraphError, Result};
use crate::hypergraph::{EdgeLocation, Hypergraph};
use crate::ids::{EdgeId, Label, SignatureId};
use crate::inverted::InvertedIndex;
use crate::partition::Partition;
use crate::signature::{Signature, SignatureInterner};
use crate::stats::{LabelCardinality, PartitionStats, DEGREE_HIST_BUCKETS};

/// Magic bytes shared by both binary formats.
const MAGIC: &[u8; 4] = b"HGMB";
/// Version of the edge-list-only binary format.
const VERSION: u32 = 1;
/// Version of the index-inclusive snapshot format.
const SNAPSHOT_VERSION: u32 = 2;

/// Section tags of the v2 snapshot layout, in their mandatory file order.
const SECTION_LABELS: u32 = 1;
const SECTION_SIGNATURES: u32 = 2;
const SECTION_PARTITIONS: u32 = 3;
const SECTION_LOCATOR: u32 = 4;
const SECTION_INCIDENCE: u32 = 5;
const SECTION_ADJACENCY: u32 = 6;

/// `(tag, name)` of every v2 section, in file order.
const SECTIONS: [(u32, &str); 6] = [
    (SECTION_LABELS, "labels"),
    (SECTION_SIGNATURES, "signatures"),
    (SECTION_PARTITIONS, "partitions"),
    (SECTION_LOCATOR, "locator"),
    (SECTION_INCIDENCE, "incidence"),
    (SECTION_ADJACENCY, "adjacency"),
];

/// Errors unless `data` has at least `n` readable bytes left.
pub(crate) fn need(data: &[u8], n: usize, what: &str) -> Result<()> {
    if data.remaining() < n {
        return Err(HypergraphError::Corrupt(format!(
            "truncated while reading {what}"
        )));
    }
    Ok(())
}

/// [`need`] for sizes computed in `u64`, so corrupt length fields cannot
/// overflow the byte-count arithmetic before the comparison.
fn need_u64(data: &[u8], n: u64, what: &str) -> Result<()> {
    if (data.remaining() as u64) < n {
        return Err(HypergraphError::Corrupt(format!(
            "truncated while reading {what}"
        )));
    }
    Ok(())
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven with
/// slicing-by-16 so checksum verification is not the bottleneck of a
/// snapshot load. Implemented locally because only a fixed set of vendored
/// crates is available offline (DESIGN.md §7).
const fn crc32_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    // tables[t][i]: the CRC of byte i followed by t zero bytes, so sixteen
    // table lookups fold sixteen input bytes at once.
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 16] = crc32_tables();

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = bytes.chunks_exact(16);
    for chunk in &mut chunks {
        let lo = u64::from_le_bytes(chunk[..8].try_into().unwrap());
        let hi = u64::from_le_bytes(chunk[8..].try_into().unwrap());
        let (w0, w1, w2, w3) = (
            lo as u32 ^ c,
            (lo >> 32) as u32,
            hi as u32,
            (hi >> 32) as u32,
        );
        let fold = |table_hi: usize, word: u32| {
            t[table_hi][(word & 0xFF) as usize]
                ^ t[table_hi - 1][((word >> 8) & 0xFF) as usize]
                ^ t[table_hi - 2][((word >> 16) & 0xFF) as usize]
                ^ t[table_hi - 3][(word >> 24) as usize]
        };
        c = fold(15, w0) ^ fold(11, w1) ^ fold(7, w2) ^ fold(3, w3);
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Bulk-reads `n` little-endian `u32`s, advancing `data` past them.
pub(crate) fn read_u32s(data: &mut &[u8], n: usize, what: &str) -> Result<Vec<u32>> {
    need_u64(data, n as u64 * 4, what)?;
    let (head, rest) = data.split_at(n * 4);
    *data = rest;
    Ok(head
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Bulk-reads `n` little-endian `u64`s, advancing `data` past them.
pub(crate) fn read_u64s(data: &mut &[u8], n: usize, what: &str) -> Result<Vec<u64>> {
    need_u64(data, n as u64 * 8, what)?;
    let (head, rest) = data.split_at(n * 8);
    *data = rest;
    Ok(head
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
        .collect())
}

/// Parses vertex labels from a reader: one non-negative integer label per
/// line; blank lines and `#` comments are skipped.
pub fn parse_labels<R: BufRead>(reader: R) -> Result<Vec<Label>> {
    let mut labels = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let value: u32 = trimmed.parse().map_err(|_| HypergraphError::Parse {
            line: lineno + 1,
            message: format!("invalid label {trimmed:?}"),
        })?;
        labels.push(Label::new(value));
    }
    Ok(labels)
}

/// Parses hyperedges from a reader: one hyperedge per line as vertex ids
/// separated by commas and/or whitespace; blank lines and `#` comments are
/// skipped.
pub fn parse_edges<R: BufRead>(reader: R) -> Result<Vec<Vec<u32>>> {
    let mut edges = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut edge = Vec::new();
        for token in trimmed.split(|c: char| c == ',' || c.is_whitespace()) {
            if token.is_empty() {
                continue;
            }
            let v: u32 = token.parse().map_err(|_| HypergraphError::Parse {
                line: lineno + 1,
                message: format!("invalid vertex id {token:?}"),
            })?;
            edge.push(v);
        }
        if edge.is_empty() {
            return Err(HypergraphError::Parse {
                line: lineno + 1,
                message: "hyperedge line contains no vertices".into(),
            });
        }
        edges.push(edge);
    }
    Ok(edges)
}

/// Builds a hypergraph from label and edge readers.
pub fn read_text<L: BufRead, E: BufRead>(labels: L, edges: E) -> Result<Hypergraph> {
    let labels = parse_labels(labels)?;
    let edges = parse_edges(edges)?;
    let mut builder = HypergraphBuilder::new();
    for label in labels {
        builder.add_vertex(label);
    }
    for edge in edges {
        builder.add_edge(edge)?;
    }
    builder.build()
}

/// Loads a hypergraph from a labels file and an edges file on disk.
pub fn load_text(labels_path: &Path, edges_path: &Path) -> Result<Hypergraph> {
    read_text(
        BufReader::new(File::open(labels_path)?),
        BufReader::new(File::open(edges_path)?),
    )
}

/// Writes a hypergraph to label and edge writers in the text format.
pub fn write_text<L: Write, E: Write>(h: &Hypergraph, mut labels: L, mut edges: E) -> Result<()> {
    for l in h.labels() {
        writeln!(labels, "{}", l.raw())?;
    }
    for (_, vs) in h.iter_edges() {
        let joined: Vec<String> = vs.iter().map(u32::to_string).collect();
        writeln!(edges, "{}", joined.join(","))?;
    }
    Ok(())
}

/// Saves a hypergraph to a labels file and an edges file on disk.
pub fn save_text(h: &Hypergraph, labels_path: &Path, edges_path: &Path) -> Result<()> {
    write_text(
        h,
        BufWriter::new(File::create(labels_path)?),
        BufWriter::new(File::create(edges_path)?),
    )
}

/// Encodes a hypergraph in the v1 binary format (labels and edge lists
/// only; loading re-indexes). See [`encode_snapshot`] for the
/// index-inclusive snapshot format.
pub fn encode_binary(h: &Hypergraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        16 + h.num_vertices() * 4 + h.num_edges() * 8 + h.table_size_bytes(),
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(h.num_vertices() as u32);
    for l in h.labels() {
        buf.put_u32_le(l.raw());
    }
    buf.put_u32_le(h.num_edges() as u32);
    for (_, vs) in h.iter_edges() {
        buf.put_u32_le(vs.len() as u32);
        for &v in vs {
            buf.put_u32_le(v);
        }
    }
    buf.freeze()
}

/// Decodes a hypergraph from either `HGMB` binary format, dispatching on
/// the version header: v1 rebuilds the index from its edge lists, v2
/// ([`decode_snapshot`]) restores the serialized index verbatim.
pub fn decode_binary(data: &[u8]) -> Result<Hypergraph> {
    let version = peek_version(data)?;
    match version {
        VERSION => decode_binary_v1(data),
        SNAPSHOT_VERSION => decode_snapshot(data),
        other => Err(HypergraphError::UnsupportedVersion(other)),
    }
}

/// Validates the magic bytes and returns the declared format version.
fn peek_version(data: &[u8]) -> Result<u32> {
    need(data, 8, "header")?;
    if &data[..4] != MAGIC {
        return Err(HypergraphError::BadMagic);
    }
    Ok(u32::from_le_bytes(data[4..8].try_into().unwrap()))
}

/// Decodes the v1 edge-list format (header already validated).
fn decode_binary_v1(mut data: &[u8]) -> Result<Hypergraph> {
    data.advance(8);
    need(data, 4, "vertex count")?;
    let nv = data.get_u32_le() as usize;
    need(data, nv * 4, "labels")?;
    let mut builder = HypergraphBuilder::new();
    for _ in 0..nv {
        builder.add_vertex(Label::new(data.get_u32_le()));
    }

    need(data, 4, "edge count")?;
    let ne = data.get_u32_le() as usize;
    for _ in 0..ne {
        need(data, 4, "edge arity")?;
        let arity = data.get_u32_le() as usize;
        need(data, arity * 4, "edge vertices")?;
        let mut edge = Vec::with_capacity(arity);
        for _ in 0..arity {
            edge.push(data.get_u32_le());
        }
        builder.add_edge(edge)?;
    }
    if data.has_remaining() {
        return Err(HypergraphError::Corrupt(format!(
            "{} trailing bytes after hypergraph",
            data.remaining()
        )));
    }
    builder.build()
}

/// Saves a hypergraph in the v1 binary format.
pub fn save_binary(h: &Hypergraph, path: &Path) -> Result<()> {
    let mut file = BufWriter::new(File::create(path)?);
    file.write_all(&encode_binary(h))?;
    Ok(())
}

/// Loads a hypergraph from either binary format (see [`decode_binary`]).
pub fn load_binary(path: &Path) -> Result<Hypergraph> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    decode_binary(&data)
}

/// Encodes a hypergraph in the v2 snapshot format: magic + version, the
/// six checksummed sections of `SECTIONS` in order, and a whole-file
/// CRC-32 trailer. The encoding is deterministic — equal hypergraphs (by
/// content, including chosen posting representations) produce identical
/// bytes, which the CI snapshot byte-stability gate relies on.
pub fn encode_snapshot(h: &Hypergraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + h.table_size_bytes() + h.index_size_bytes() * 2);
    buf.put_slice(MAGIC);
    buf.put_u32_le(SNAPSHOT_VERSION);

    let mut payload = BytesMut::new();
    for (tag, _) in SECTIONS {
        payload.clear();
        match tag {
            SECTION_LABELS => {
                payload.put_u32_le(h.num_vertices() as u32);
                for l in h.labels() {
                    payload.put_u32_le(l.raw());
                }
            }
            SECTION_SIGNATURES => {
                payload.put_u32_le(h.interner().len() as u32);
                for (_, sig) in h.interner().iter() {
                    payload.put_u32_le(sig.arity() as u32);
                    for &l in sig.labels() {
                        payload.put_u32_le(l.raw());
                    }
                }
            }
            SECTION_PARTITIONS => {
                payload.put_u32_le(h.partitions().len() as u32);
                for p in h.partitions() {
                    payload.put_u32_le(p.arity());
                    payload.put_u32_le(p.len() as u32);
                    for &v in p.raw_vertices() {
                        payload.put_u32_le(v);
                    }
                    for g in p.global_ids() {
                        payload.put_u32_le(g.raw());
                    }
                    p.index().encode_v2(&mut payload);
                    encode_stats(p.stats(), &mut payload);
                }
            }
            SECTION_LOCATOR => {
                payload.put_u32_le(h.num_edges() as u32);
                for e in 0..h.num_edges() {
                    let loc = h.locate(EdgeId::from_index(e));
                    payload.put_u32_le(loc.signature.raw());
                    payload.put_u32_le(loc.row);
                }
            }
            SECTION_INCIDENCE => {
                for &o in &h.incidence_offsets {
                    payload.put_u64_le(o);
                }
                for &e in &h.incidence_edges {
                    payload.put_u32_le(e);
                }
            }
            SECTION_ADJACENCY => {
                for &a in &h.adj_counts {
                    payload.put_u32_le(a);
                }
            }
            _ => unreachable!("unknown section tag"),
        }
        buf.put_u32_le(tag);
        buf.put_u64_le(payload.len() as u64);
        buf.put_slice(&payload);
        buf.put_u32_le(crc32(&payload));
    }

    let file_crc = crc32(&buf);
    buf.put_u32_le(file_crc);
    buf.freeze()
}

fn encode_stats(stats: &PartitionStats, buf: &mut BytesMut) {
    buf.put_u64_le(stats.rows);
    buf.put_u32_le(stats.labels.len() as u32);
    for g in &stats.labels {
        buf.put_u32_le(g.label.raw());
        buf.put_u64_le(g.distinct_vertices);
        buf.put_u64_le(g.incidences);
        buf.put_u64_le(g.sum_sq_degrees);
        for &b in &g.degree_hist {
            buf.put_u64_le(b);
        }
    }
}

fn decode_stats(data: &mut &[u8]) -> Result<PartitionStats> {
    need(data, 12, "partition stats header")?;
    let rows = data.get_u64_le();
    let num_groups = data.get_u32_le() as usize;
    need(
        data,
        num_groups * (4 + 24 + DEGREE_HIST_BUCKETS * 8),
        "stats label groups",
    )?;
    let mut labels = Vec::with_capacity(num_groups);
    let mut prev: Option<Label> = None;
    for _ in 0..num_groups {
        let label = Label::new(data.get_u32_le());
        if prev.is_some_and(|p| label <= p) {
            return Err(HypergraphError::Corrupt(
                "stats label groups out of order".into(),
            ));
        }
        prev = Some(label);
        let distinct_vertices = data.get_u64_le();
        let incidences = data.get_u64_le();
        let sum_sq_degrees = data.get_u64_le();
        let mut degree_hist = [0u64; DEGREE_HIST_BUCKETS];
        for b in &mut degree_hist {
            *b = data.get_u64_le();
        }
        labels.push(LabelCardinality {
            label,
            distinct_vertices,
            incidences,
            sum_sq_degrees,
            degree_hist,
        });
    }
    Ok(PartitionStats { rows, labels })
}

/// Decodes the v2 snapshot format into a serving-ready [`Hypergraph`]
/// without re-indexing. Section and whole-file checksums are verified, and
/// every structural invariant the engine relies on is re-validated, so
/// corrupt input — truncated anywhere, or with any bit flipped — returns a
/// typed error rather than panicking at load or query time.
pub fn decode_snapshot(data: &[u8]) -> Result<Hypergraph> {
    let version = peek_version(data)?;
    if version != SNAPSHOT_VERSION {
        return Err(HypergraphError::UnsupportedVersion(version));
    }

    // Split off every section payload, recording its stored CRC but not
    // yet verifying it: the whole-file CRC covers every section byte
    // (payloads, headers, and the stored section CRCs themselves), so one
    // fast pass proves integrity. Section CRCs are only recomputed when
    // that pass fails, to localize the damage in the error.
    let mut cursor = &data[8..];
    let mut payloads: Vec<(&[u8], u32)> = Vec::with_capacity(SECTIONS.len());
    for (tag, name) in SECTIONS {
        need(cursor, 12, "section header")?;
        let got_tag = cursor.get_u32_le();
        if got_tag != tag {
            return Err(HypergraphError::Corrupt(format!(
                "expected section {name} (tag {tag}), found tag {got_tag}"
            )));
        }
        let len64 = cursor.get_u64_le();
        need_u64(cursor, len64.saturating_add(4), "section payload")?;
        let len = usize::try_from(len64)
            .map_err(|_| HypergraphError::Corrupt(format!("section {name} length overflow")))?;
        let payload = &cursor[..len];
        cursor.advance(len);
        payloads.push((payload, cursor.get_u32_le()));
    }
    need(cursor, 4, "file checksum")?;
    let body_len = data.len() - cursor.len();
    let stored_file_crc = (&cursor[..4]).get_u32_le();
    if crc32(&data[..body_len]) != stored_file_crc {
        for ((payload, stored_crc), (_, name)) in payloads.iter().zip(SECTIONS) {
            if crc32(payload) != *stored_crc {
                return Err(HypergraphError::ChecksumMismatch { section: name });
            }
        }
        return Err(HypergraphError::ChecksumMismatch { section: "file" });
    }
    if cursor.len() > 4 {
        return Err(HypergraphError::Corrupt(format!(
            "{} trailing bytes after snapshot",
            cursor.len() - 4
        )));
    }

    let corrupt = |msg: String| HypergraphError::Corrupt(msg);

    // LABELS.
    let mut d = payloads[0].0;
    need(d, 4, "vertex count")?;
    let nv = d.get_u32_le() as usize;
    let labels: Vec<Label> = read_u32s(&mut d, nv, "labels")?
        .into_iter()
        .map(Label::new)
        .collect();
    if !d.is_empty() {
        return Err(corrupt("trailing bytes in labels section".into()));
    }

    // SIGNATURES.
    let mut d = payloads[1].0;
    need(d, 4, "signature count")?;
    let num_sigs = d.get_u32_le() as usize;
    let mut interner = SignatureInterner::new();
    for i in 0..num_sigs {
        need(d, 4, "signature arity")?;
        let arity = d.get_u32_le() as usize;
        need(d, arity * 4, "signature labels")?;
        let mut sig_labels = Vec::with_capacity(arity);
        for _ in 0..arity {
            sig_labels.push(Label::new(d.get_u32_le()));
        }
        if !sig_labels.windows(2).all(|w| w[0] <= w[1]) {
            return Err(corrupt(format!("signature {i} labels not sorted")));
        }
        let id = interner.intern(Signature::from_sorted(sig_labels));
        if id.index() != i {
            return Err(corrupt(format!(
                "signature {i} duplicates signature {}",
                id.index()
            )));
        }
    }
    if !d.is_empty() {
        return Err(corrupt("trailing bytes in signatures section".into()));
    }

    // PARTITIONS.
    let mut d = payloads[2].0;
    need(d, 4, "partition count")?;
    let num_parts = d.get_u32_le() as usize;
    if num_parts != num_sigs {
        return Err(corrupt(format!(
            "{num_parts} partitions for {num_sigs} signatures"
        )));
    }
    let mut partitions: Vec<Arc<Partition>> = Vec::with_capacity(num_parts);
    for i in 0..num_parts {
        let sid = SignatureId::from_index(i);
        need(d, 8, "partition header")?;
        let arity = d.get_u32_le();
        let rows = d.get_u32_le() as usize;
        if interner.resolve(sid).arity() != arity as usize {
            return Err(corrupt(format!(
                "partition {i} arity disagrees with its signature"
            )));
        }
        let num_verts = rows
            .checked_mul(arity as usize)
            .ok_or_else(|| corrupt(format!("partition {i} size overflow")))?;
        let vertices = read_u32s(&mut d, num_verts, "partition vertex table")?;
        for row in vertices.chunks(arity.max(1) as usize) {
            if !crate::setops::is_strictly_sorted(row) {
                return Err(corrupt(format!("partition {i} row not sorted")));
            }
            if row.last().is_some_and(|&v| v as usize >= nv) {
                return Err(corrupt(format!(
                    "partition {i} row references unknown vertex"
                )));
            }
        }
        let global_ids: Vec<EdgeId> = read_u32s(&mut d, rows, "partition global ids")?
            .into_iter()
            .map(EdgeId::new)
            .collect();
        let index = InvertedIndex::decode_v2(&mut d)?;
        if index.num_rows() as usize != rows {
            return Err(corrupt(format!(
                "partition {i} index covers the wrong row count"
            )));
        }
        let stats = decode_stats(&mut d)?;
        partitions.push(Arc::new(Partition::from_parts(
            sid, arity, vertices, global_ids, index, stats,
        )));
    }
    if !d.is_empty() {
        return Err(corrupt("trailing bytes in partitions section".into()));
    }

    // LOCATOR.
    let mut d = payloads[3].0;
    need(d, 4, "edge count")?;
    let ne = d.get_u32_le() as usize;
    let entries = read_u32s(&mut d, ne * 2, "locator entries")?;
    let mut locator = Vec::with_capacity(ne);
    for (e, pair) in entries.chunks_exact(2).enumerate() {
        let signature = SignatureId::new(pair[0]);
        let row = pair[1];
        let part = partitions
            .get(signature.index())
            .ok_or_else(|| corrupt(format!("edge {e} located in unknown partition")))?;
        if row as usize >= part.len() {
            return Err(corrupt(format!("edge {e} located past its partition")));
        }
        if part.global_id(row).index() != e {
            return Err(corrupt(format!("edge {e} and its partition row disagree")));
        }
        locator.push(EdgeLocation { signature, row });
    }
    if !d.is_empty() {
        return Err(corrupt("trailing bytes in locator section".into()));
    }
    if partitions.iter().map(|p| p.len()).sum::<usize>() != ne {
        return Err(corrupt("partition rows do not cover the edge set".into()));
    }

    // INCIDENCE.
    let mut d = payloads[4].0;
    let incidence_offsets = read_u64s(&mut d, nv + 1, "incidence offsets")?;
    if incidence_offsets[0] != 0 || incidence_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(corrupt("incidence offsets not monotone from zero".into()));
    }
    let total64 = *incidence_offsets.last().unwrap();
    let total =
        usize::try_from(total64).map_err(|_| corrupt("incidence length overflow".into()))?;
    let incidence_edges = read_u32s(&mut d, total, "incidence edges")?;
    if incidence_edges.iter().any(|&e| e as usize >= ne) {
        return Err(corrupt("incidence references unknown edge".into()));
    }
    if !d.is_empty() {
        return Err(corrupt("trailing bytes in incidence section".into()));
    }

    // ADJACENCY.
    let mut d = payloads[5].0;
    let adj_counts = read_u32s(&mut d, nv, "adjacency counts")?;
    if !d.is_empty() {
        return Err(corrupt("trailing bytes in adjacency section".into()));
    }

    Ok(Hypergraph::from_serialized_parts(
        labels,
        interner,
        partitions,
        locator,
        incidence_offsets,
        incidence_edges,
        adj_counts,
    ))
}

/// Saves a hypergraph in the v2 snapshot format.
pub fn save_snapshot(h: &Hypergraph, path: &Path) -> Result<()> {
    let mut file = BufWriter::new(File::create(path)?);
    file.write_all(&encode_snapshot(h))?;
    Ok(())
}

/// Loads a serving-ready hypergraph from a v2 snapshot file.
pub fn load_snapshot(path: &Path) -> Result<Hypergraph> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    decode_snapshot(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;
    use crate::ids::EdgeId;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.build().unwrap()
    }

    /// A graph big enough that its index mixes all three posting
    /// representations (hub vertex → bitmap or compressed, sparse leaves →
    /// lists) under the adaptive rule.
    fn multi_repr() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0)); // hub
        b.add_vertices(600, Label::new(1)); // leaves
        for leaf in 1..=300u32 {
            b.add_edge(vec![0, leaf]).unwrap(); // dense hub key
        }
        for leaf in 301..=600u32 {
            b.add_edge(vec![leaf]).unwrap(); // singleton partition rows
        }
        b.build().unwrap()
    }

    #[test]
    fn text_roundtrip() {
        let h = sample();
        let mut labels = Vec::new();
        let mut edges = Vec::new();
        write_text(&h, &mut labels, &mut edges).unwrap();
        let h2 = read_text(labels.as_slice(), edges.as_slice()).unwrap();
        assert_eq!(h.num_vertices(), h2.num_vertices());
        assert_eq!(h.num_edges(), h2.num_edges());
        for i in 0..h.num_edges() {
            assert_eq!(
                h.edge_vertices(EdgeId::from_index(i)),
                h2.edge_vertices(EdgeId::from_index(i))
            );
        }
        assert_eq!(h.labels(), h2.labels());
    }

    #[test]
    fn parse_accepts_comments_and_mixed_separators() {
        let labels = parse_labels("# labels\n0\n\n1\n".as_bytes()).unwrap();
        assert_eq!(labels, vec![Label::new(0), Label::new(1)]);
        let edges = parse_edges("# edges\n0, 1\n0\t1 , 2\n".as_bytes()).unwrap();
        assert_eq!(edges, vec![vec![0, 1], vec![0, 1, 2]]);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = parse_labels("zero\n".as_bytes()).unwrap_err();
        assert!(matches!(err, HypergraphError::Parse { line: 1, .. }));
        let err = parse_edges("1,x\n".as_bytes()).unwrap_err();
        assert!(matches!(err, HypergraphError::Parse { line: 1, .. }));
        let err = parse_edges(",,\n".as_bytes()).unwrap_err();
        assert!(matches!(err, HypergraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn binary_roundtrip() {
        let h = sample();
        let bytes = encode_binary(&h);
        let h2 = decode_binary(&bytes).unwrap();
        assert_eq!(h.num_vertices(), h2.num_vertices());
        assert_eq!(h.num_edges(), h2.num_edges());
        assert_eq!(h.labels(), h2.labels());
        for i in 0..h.num_edges() {
            assert_eq!(
                h.edge_vertices(EdgeId::from_index(i)),
                h2.edge_vertices(EdgeId::from_index(i))
            );
        }
    }

    #[test]
    fn binary_rejects_corruption() {
        let h = sample();
        let bytes = encode_binary(&h);

        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(matches!(
            decode_binary(&bad),
            Err(HypergraphError::BadMagic)
        ));

        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 0xFF;
        assert!(matches!(
            decode_binary(&bad),
            Err(HypergraphError::UnsupportedVersion(_))
        ));

        // Truncation at every prefix must error, never panic.
        for cut in 0..bytes.len() {
            assert!(
                decode_binary(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }

        // Trailing junk.
        let mut bad = bytes.to_vec();
        bad.push(0);
        assert!(matches!(
            decode_binary(&bad),
            Err(HypergraphError::Corrupt(_))
        ));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_roundtrip_is_full_content_equality() {
        for h in [sample(), multi_repr()] {
            let bytes = encode_snapshot(&h);
            let h2 = decode_snapshot(&bytes).unwrap();
            // Hypergraph PartialEq covers labels, interner, partitions
            // (vertex tables, global ids, indices with every bitmap and
            // compressed block, stats), locator, incidence CSR, adjacency.
            assert_eq!(h, h2);
            // decode_binary dispatches on the version header.
            assert_eq!(decode_binary(&bytes).unwrap(), h);
        }
    }

    #[test]
    fn snapshot_encoding_is_byte_stable() {
        for h in [sample(), multi_repr()] {
            let bytes = encode_snapshot(&h);
            // save(load(x)) == x, byte for byte — the CI golden gate.
            let reloaded = decode_snapshot(&bytes).unwrap();
            assert_eq!(encode_snapshot(&reloaded), bytes);
            // Deterministic across repeated encodes of the same graph.
            assert_eq!(encode_snapshot(&h), bytes);
        }
    }

    #[test]
    fn snapshot_empty_graph_roundtrips() {
        let h = HypergraphBuilder::new().build().unwrap();
        let bytes = encode_snapshot(&h);
        let h2 = decode_snapshot(&bytes).unwrap();
        assert_eq!(h, h2);
        assert_eq!(h2.num_vertices(), 0);
        assert_eq!(h2.num_edges(), 0);
    }

    #[test]
    fn snapshot_rejects_truncation_at_every_offset() {
        let bytes = encode_snapshot(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn snapshot_rejects_every_single_bit_flip() {
        let bytes = encode_snapshot(&sample()).to_vec();
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_snapshot(&bad).is_err(),
                    "flip of bit {bit} in byte {byte} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn snapshot_rejects_trailing_junk() {
        let mut bytes = encode_snapshot(&sample()).to_vec();
        bytes.push(0);
        assert!(decode_snapshot(&bytes).is_err());
    }

    #[test]
    fn snapshot_errors_are_typed() {
        let bytes = encode_snapshot(&sample()).to_vec();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            decode_snapshot(&bad),
            Err(HypergraphError::BadMagic)
        ));

        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(HypergraphError::UnsupportedVersion(9))
        ));

        // Flip a payload byte inside the first section: its checksum fails.
        let mut bad = bytes.clone();
        bad[8 + 12 + 1] ^= 0x40;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(HypergraphError::ChecksumMismatch { section: "labels" })
        ));

        // Flip the file trailer: the whole-file checksum fails.
        let mut bad = bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(matches!(
            decode_snapshot(&bad),
            Err(HypergraphError::ChecksumMismatch { section: "file" })
        ));
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join("hgmatch-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let h = sample();

        let lp = dir.join("labels.txt");
        let ep = dir.join("edges.txt");
        save_text(&h, &lp, &ep).unwrap();
        let h2 = load_text(&lp, &ep).unwrap();
        assert_eq!(h.num_edges(), h2.num_edges());

        let bp = dir.join("graph.hgmb");
        save_binary(&h, &bp).unwrap();
        let h3 = load_binary(&bp).unwrap();
        assert_eq!(h.num_edges(), h3.num_edges());

        let sp = dir.join("graph.hgsnap");
        save_snapshot(&h, &sp).unwrap();
        let h4 = load_snapshot(&sp).unwrap();
        assert_eq!(h, h4);

        std::fs::remove_dir_all(&dir).ok();
    }
}
