//! # hgmatch-hypergraph
//!
//! Storage substrate for the HGMatch subhypergraph-matching engine
//! (Yang et al., ICDE 2023).
//!
//! This crate provides everything the matching engine needs from the data
//! layer:
//!
//! * [`Hypergraph`] — an immutable, vertex-labelled hypergraph stored as
//!   *signature-partitioned hyperedge tables* (one table per multiset of
//!   vertex labels, see the paper's §IV-B) built through
//!   [`HypergraphBuilder`].
//! * [`InvertedIndex`] — the lightweight per-partition inverted hyperedge
//!   index (`vertex → sorted posting list of row ids`, §IV-C).
//! * [`setops`] — merge/galloping intersection, union and difference over
//!   sorted `u32` slices; the paper generates hyperedge candidates purely
//!   with these operations (§V-B).
//! * [`io`] — a Benson-style text format and a compact binary format.
//! * [`bipartite`] — the hypergraph → incidence-bipartite-graph conversion
//!   used by the RapidMatch-style baseline (§I, Fig. 2).
//!
//! The types here are deliberately small and `u32`-based: posting lists of
//! dense local row ids keep set operations cache-friendly, which is where
//! the match-by-hyperedge framework spends its time.

pub mod bipartite;
pub mod bitmap;
pub mod builder;
pub mod compressed;
pub mod dynamic;
pub mod error;
pub mod fxhash;
pub mod hypergraph;
pub mod ids;
pub mod inverted;
pub mod io;
pub mod partition;
pub mod setops;
pub mod sharded;
pub mod signature;
pub mod stats;

pub use bitmap::Bitmap;
pub use builder::HypergraphBuilder;
pub use compressed::CompressedPostings;
pub use dynamic::{DynamicHypergraph, SnapshotDelta, UpdateOp};
pub use error::{HypergraphError, Result};
pub use hypergraph::Hypergraph;
pub use ids::{EdgeId, Label, SignatureId, VertexId};
pub use inverted::{InvertedIndex, Posting, ReprBreakdown, ReprKind};
pub use partition::Partition;
pub use sharded::{env_shards, ShardedHypergraph};
pub use signature::{Signature, SignatureInterner};
pub use stats::{HypergraphStats, LabelCardinality, PartitionStats};
