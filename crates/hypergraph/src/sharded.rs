//! Sharded data plane: N independent [`DynamicHypergraph`] shards behind
//! one writer facade (DESIGN.md §17).
//!
//! Hyperedges are routed to shards by hashing their smallest vertex id, so
//! each shard owns a disjoint slice of the hyperedge set while the vertex
//! set (and its labels) is replicated to every shard. Each shard keeps its
//! own inverted indexes, takes its own update stream and advances its own
//! epoch; [`ShardedHypergraph::snapshot`] scatter-gathers the per-shard
//! snapshots into one merged [`Hypergraph`] whose content is **identical**
//! to what a monolithic [`DynamicHypergraph`] fed the same update stream
//! would produce — the sharded==monolithic differential oracle in
//! `dynamic_differential.rs` holds by construction:
//!
//! * A global insertion sequence number is recorded per live hyperedge, so
//!   the merge lays edges out in exactly the monolithic insertion order
//!   (reinserted edges move to the end, as in [`DynamicHypergraph`]).
//! * Per-partition posting lists are **not** re-indexed: each shard's
//!   already-sorted postings are translated through a monotone shard-row →
//!   merged-row map and unioned with the tournament k-way machinery of
//!   [`crate::setops::union_many_into`] — the same kernels candidate
//!   generation runs on.
//!
//! With `HGMATCH_SHARDS=1` (the default, [`env_shards`]) the facade is a
//! zero-cost pass-through to a single [`DynamicHypergraph`], including its
//! snapshot-identity guarantees (unchanged data returns the same `Arc`).

use std::sync::Arc;

use crate::dynamic::{DynamicHypergraph, SnapshotDelta, UpdateOp};
use crate::error::Result;
use crate::fxhash::{hash_u64, FxHashMap};
use crate::hypergraph::{EdgeLocation, Hypergraph};
use crate::ids::{EdgeId, Label, SignatureId, VertexId};
use crate::inverted::InvertedIndex;
use crate::partition::Partition;
use crate::setops::{union_many_into, MultiwayScratch};
use crate::signature::{Signature, SignatureInterner};
use crate::stats::PartitionStats;

/// Number of shards requested via `HGMATCH_SHARDS` (default 1, i.e. the
/// monolithic data plane).
pub fn env_shards() -> usize {
    std::env::var("HGMATCH_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Memoized result of the last scatter-gather merge.
struct CachedMerge {
    /// Facade epoch the merge was taken at.
    epoch: u64,
    /// The merged delta handed to callers (same `Arc` until data changes).
    delta: SnapshotDelta,
    /// Merged signature assignment, by merged [`SignatureId`] — the basis
    /// of the next merge's `sids_stable` flag.
    sigs: Vec<Signature>,
}

/// A hash-sharded dynamic hypergraph: the writer facade over N independent
/// [`DynamicHypergraph`] shards. See the module docs for the layout.
pub struct ShardedHypergraph {
    shards: Vec<DynamicHypergraph>,
    /// Global insertion sequence of every **live** hyperedge, keyed by its
    /// canonical (sorted, deduplicated) vertex list.
    seq_of_key: FxHashMap<Vec<u32>, u64>,
    next_seq: u64,
    /// Facade epoch: bumps on every effective mutation across any shard.
    epoch: u64,
    cached: Option<CachedMerge>,
}

impl ShardedHypergraph {
    /// Creates an empty sharded hypergraph with `num_shards ≥ 1` shards.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        Self {
            shards: (0..num_shards).map(|_| DynamicHypergraph::new()).collect(),
            seq_of_key: FxHashMap::default(),
            next_seq: 0,
            epoch: 0,
            cached: None,
        }
    }

    /// Shards an existing static hypergraph: vertices are replicated to all
    /// shards, hyperedges routed in their original insertion (edge id)
    /// order, so the first merged snapshot equals `h` itself.
    pub fn from_hypergraph(h: &Hypergraph, num_shards: usize) -> Result<Self> {
        let mut sharded = Self::new(num_shards);
        for &label in h.labels() {
            sharded.add_vertex(label);
        }
        for (_, vs) in h.iter_edges() {
            let inserted = sharded.insert_hyperedge(vs.to_vec())?;
            debug_assert!(inserted, "static hypergraphs hold no duplicate edges");
        }
        Ok(sharded)
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of vertices (replicated, so every shard agrees).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.shards[0].num_vertices()
    }

    /// Number of live hyperedges across all shards.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.seq_of_key.len()
    }

    /// Facade epoch: advances on every effective mutation on any shard.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Shard index owning the hyperedge with canonical key `key`.
    #[inline]
    fn route(&self, key: &[u32]) -> usize {
        let anchor = key.first().copied().unwrap_or(0);
        (hash_u64(anchor as u64) % self.shards.len() as u64) as usize
    }

    /// Sorts and deduplicates a vertex list into the canonical edge key.
    fn canonical(mut vertices: Vec<u32>) -> Vec<u32> {
        vertices.sort_unstable();
        vertices.dedup();
        vertices
    }

    /// Adds a vertex with `label` to every shard; all shards assign the
    /// same id, which is returned.
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let mut id = None;
        for shard in &mut self.shards {
            let v = shard.add_vertex(label);
            debug_assert!(
                id.is_none_or(|prev| prev == v),
                "shards disagree on vertex ids"
            );
            id = Some(v);
        }
        self.epoch += 1;
        id.expect("at least one shard")
    }

    /// Whether a hyperedge with exactly this vertex set is live.
    pub fn contains_edge(&self, vertices: &[u32]) -> bool {
        let key = Self::canonical(vertices.to_vec());
        self.shards[self.route(&key)].contains_edge(&key)
    }

    /// Inserts a hyperedge, routing it to its shard. Returns `Ok(false)` if
    /// an identical hyperedge is already live (no change).
    pub fn insert_hyperedge(&mut self, vertices: Vec<u32>) -> Result<bool> {
        let key = Self::canonical(vertices);
        let shard = self.route(&key);
        match self.shards[shard].insert_hyperedge(key.clone())? {
            Some(_) => {
                self.seq_of_key.insert(key, self.next_seq);
                self.next_seq += 1;
                self.epoch += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Deletes the hyperedge with exactly this vertex set. Returns
    /// `Ok(false)` if no such hyperedge is live.
    pub fn delete_hyperedge(&mut self, vertices: &[u32]) -> Result<bool> {
        let key = Self::canonical(vertices.to_vec());
        let shard = self.route(&key);
        if self.shards[shard].delete_hyperedge(&key)? {
            self.seq_of_key.remove(&key);
            self.epoch += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Applies one update-stream operation; returns whether it changed the
    /// hypergraph (mirrors [`DynamicHypergraph::apply`]).
    pub fn apply(&mut self, op: &UpdateOp) -> Result<bool> {
        match op {
            UpdateOp::AddVertex(label) => {
                self.add_vertex(*label);
                Ok(true)
            }
            UpdateOp::Insert(vs) => self.insert_hyperedge(vs.clone()),
            UpdateOp::Delete(vs) => self.delete_hyperedge(vs),
        }
    }

    /// Takes a consistent snapshot of the whole sharded hypergraph.
    ///
    /// With one shard this is a pass-through. Otherwise the per-shard
    /// snapshots are scatter-gathered into one merged graph laid out in
    /// global insertion order; if nothing changed since the last call, the
    /// previous delta (same `Arc`) is returned.
    pub fn snapshot(&mut self) -> SnapshotDelta {
        if self.shards.len() == 1 {
            return self.shards[0].snapshot();
        }
        if let Some(cached) = &self.cached {
            if cached.epoch == self.epoch {
                return cached.delta.clone();
            }
        }
        self.merge_snapshots()
    }

    /// The scatter-gather merge (slow path of [`Self::snapshot`]); stores
    /// the result in `self.cached` and returns it.
    fn merge_snapshots(&mut self) -> SnapshotDelta {
        let deltas: Vec<SnapshotDelta> = self.shards.iter_mut().map(|s| s.snapshot()).collect();
        let labels: Vec<Label> = deltas[0].graph.labels().to_vec();

        // Lay every live hyperedge out in global insertion order.
        let mut order: Vec<(u64, usize, SignatureId, u32)> =
            Vec::with_capacity(self.seq_of_key.len());
        for (shard, delta) in deltas.iter().enumerate() {
            for p in delta.graph.partitions() {
                for (row, vs) in p.iter_rows() {
                    let seq = *self
                        .seq_of_key
                        .get(vs)
                        .expect("live shard edge must carry a sequence number");
                    order.push((seq, shard, p.signature(), row));
                }
            }
        }
        order.sort_unstable_by_key(|&(seq, ..)| seq);

        // First-encounter interning in global order reproduces the
        // monolithic signature assignment; build the merged partition
        // tables and the monotone shard-row → merged-row maps.
        let mut interner = SignatureInterner::new();
        let mut vertices_of: Vec<Vec<u32>> = Vec::new();
        let mut global_ids_of: Vec<Vec<EdgeId>> = Vec::new();
        let mut row_maps: Vec<FxHashMap<(usize, SignatureId), Vec<u32>>> = Vec::new();
        let mut locator = Vec::with_capacity(order.len());
        for (e, &(_, shard, shard_sid, shard_row)) in order.iter().enumerate() {
            let shard_graph = &deltas[shard].graph;
            let sig = shard_graph.interner().resolve(shard_sid);
            let sid = interner.intern(sig.clone());
            if sid.index() == vertices_of.len() {
                vertices_of.push(Vec::new());
                global_ids_of.push(Vec::new());
                row_maps.push(FxHashMap::default());
            }
            let merged_row = global_ids_of[sid.index()].len() as u32;
            let p = &shard_graph.partitions()[shard_sid.index()];
            vertices_of[sid.index()].extend_from_slice(p.row(shard_row));
            global_ids_of[sid.index()].push(EdgeId::from_index(e));
            locator.push(EdgeLocation {
                signature: sid,
                row: merged_row,
            });
            let map = row_maps[sid.index()].entry((shard, shard_sid)).or_default();
            debug_assert_eq!(map.len(), shard_row as usize, "shard rows arrive in order");
            map.push(merged_row);
        }

        // Merge per-shard postings per key with the tournament k-way union
        // kernel; translation through the monotone row maps keeps every
        // input sorted, so no re-indexing is needed.
        let mut scratch = MultiwayScratch::new();
        let mut partitions: Vec<Arc<Partition>> = Vec::with_capacity(vertices_of.len());
        for (sid_idx, (vertices, global_ids)) in
            vertices_of.into_iter().zip(global_ids_of).enumerate()
        {
            let sid = SignatureId::from_index(sid_idx);
            let arity = interner.resolve(sid).arity() as u32;
            let rows = global_ids.len();

            // key → translated posting list per contributing shard.
            let mut translated: std::collections::BTreeMap<u32, Vec<Vec<u32>>> =
                std::collections::BTreeMap::new();
            for (&(shard, shard_sid), map) in &row_maps[sid_idx] {
                let p = &deltas[shard].graph.partitions()[shard_sid.index()];
                for (v, posting) in p.index().iter() {
                    let list: Vec<u32> = posting
                        .to_sorted()
                        .into_iter()
                        .map(|r| map[r as usize])
                        .collect();
                    debug_assert!(crate::setops::is_strictly_sorted(&list));
                    translated.entry(v).or_default().push(list);
                }
            }
            let mut cells: Vec<(u32, Vec<u32>)> = Vec::with_capacity(translated.len());
            let mut merged = Vec::new();
            for (v, mut lists) in translated {
                if lists.len() == 1 {
                    cells.push((v, lists.pop().expect("one list")));
                } else {
                    let mut inputs: Vec<&[u32]> = lists.iter().map(|l| l.as_slice()).collect();
                    merged.clear();
                    union_many_into(&mut inputs, &mut merged, &mut scratch);
                    cells.push((v, merged.clone()));
                }
            }
            let index = InvertedIndex::from_sorted_postings(
                cells.iter().map(|(v, list)| (*v, list.as_slice())),
                rows as u32,
            );
            let stats = PartitionStats::recompute_from_index(&index, rows, &labels);
            partitions.push(Arc::new(Partition::from_parts(
                sid, arity, vertices, global_ids, index, stats,
            )));
        }

        let sigs: Vec<Signature> = interner.iter().map(|(_, s)| s.clone()).collect();
        let sids_stable = match &self.cached {
            // Ids stay meaningful iff every previously assigned id still
            // denotes the same signature (a removed suffix is harmless).
            Some(prev) => sigs.iter().zip(prev.sigs.iter()).all(|(a, b)| a == b),
            // Like the monolithic first snapshot: no predecessor to be
            // stable against.
            None => false,
        };
        let mut touched_labels: Vec<Label> = deltas
            .iter()
            .flat_map(|d| d.touched_labels.clone())
            .collect();
        touched_labels.sort_unstable();
        touched_labels.dedup();

        let graph = Arc::new(Hypergraph::assemble(labels, interner, partitions, locator));
        let delta = SnapshotDelta {
            graph,
            epoch: self.epoch,
            touched_labels,
            sids_stable,
        };
        self.cached = Some(CachedMerge {
            epoch: self.epoch,
            delta: delta.clone(),
            sigs,
        });
        delta
    }
}

impl std::fmt::Debug for ShardedHypergraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHypergraph")
            .field("shards", &self.shards.len())
            .field("vertices", &self.num_vertices())
            .field("edges", &self.num_edges())
            .field("epoch", &self.epoch)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    fn monolithic_and_sharded(num_shards: usize) -> (DynamicHypergraph, ShardedHypergraph) {
        (DynamicHypergraph::new(), ShardedHypergraph::new(num_shards))
    }

    fn apply_script(
        mono: &mut DynamicHypergraph,
        sharded: &mut ShardedHypergraph,
        ops: &[UpdateOp],
    ) {
        for op in ops {
            let a = mono.apply(op).unwrap();
            let b = sharded.apply(op).unwrap();
            assert_eq!(a, b, "divergent effect for {op:?}");
        }
    }

    fn script() -> Vec<UpdateOp> {
        use UpdateOp::*;
        let mut ops = vec![AddVertex(Label::new(0)); 12];
        ops.extend([AddVertex(Label::new(1)), AddVertex(Label::new(2))]);
        ops.extend([
            Insert(vec![0, 1, 2]),
            Insert(vec![2, 3]),
            Insert(vec![4, 5, 6]),
            Insert(vec![0, 1, 2]), // duplicate: no-op
            Delete(vec![2, 3]),
            Insert(vec![7, 8]),
            Insert(vec![2, 3]), // reinsert moves to end
            Insert(vec![9, 10, 11, 12]),
            Delete(vec![4, 5, 6]),
            Insert(vec![0, 13]),
        ]);
        ops
    }

    #[test]
    fn sharded_snapshot_equals_monolithic() {
        for num_shards in [1, 2, 3, 4, 7] {
            let (mut mono, mut sharded) = monolithic_and_sharded(num_shards);
            apply_script(&mut mono, &mut sharded, &script());
            assert_eq!(mono.num_edges(), sharded.num_edges());
            assert_eq!(mono.num_vertices(), sharded.num_vertices());
            let a = mono.snapshot();
            let b = sharded.snapshot();
            assert_eq!(
                *a.graph, *b.graph,
                "sharded ({num_shards}) merge diverges from monolithic"
            );
        }
    }

    #[test]
    fn from_hypergraph_first_snapshot_is_identity() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(10, Label::new(0));
        b.add_vertex(Label::new(3));
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 10]).unwrap();
        b.add_edge(vec![4, 5, 6, 7]).unwrap();
        let h = b.build().unwrap();
        for num_shards in [1, 2, 4] {
            let mut sharded = ShardedHypergraph::from_hypergraph(&h, num_shards).unwrap();
            assert_eq!(*sharded.snapshot().graph, h);
        }
    }

    #[test]
    fn unchanged_snapshot_returns_same_arc() {
        let (mut mono, mut sharded) = monolithic_and_sharded(3);
        apply_script(&mut mono, &mut sharded, &script());
        let a = sharded.snapshot();
        let b = sharded.snapshot();
        assert!(Arc::ptr_eq(&a.graph, &b.graph));
        // A mutation invalidates the memo.
        assert!(sharded.insert_hyperedge(vec![1, 2, 3]).unwrap());
        let c = sharded.snapshot();
        assert!(!Arc::ptr_eq(&a.graph, &c.graph));
    }

    #[test]
    fn first_snapshot_has_no_predecessor() {
        let (mut mono, mut sharded) = monolithic_and_sharded(2);
        apply_script(&mut mono, &mut sharded, &script());
        let delta = sharded.snapshot();
        assert!(
            !delta.sids_stable,
            "first merged snapshot has no predecessor"
        );
        assert!(!delta.touched_labels.is_empty());
        // Inserting into an existing partition keeps signature ids stable.
        assert!(sharded.insert_hyperedge(vec![3, 4]).unwrap());
        let next = sharded.snapshot();
        assert!(next.sids_stable);
    }

    #[test]
    fn duplicate_and_missing_ops_are_no_ops() {
        let mut sharded = ShardedHypergraph::new(4);
        sharded.add_vertex(Label::new(0));
        sharded.add_vertex(Label::new(0));
        assert!(sharded.insert_hyperedge(vec![0, 1]).unwrap());
        assert!(!sharded.insert_hyperedge(vec![1, 0]).unwrap());
        assert!(sharded.contains_edge(&[0, 1]));
        assert!(!sharded.delete_hyperedge(&[0]).unwrap());
        assert!(sharded.delete_hyperedge(&[0, 1]).unwrap());
        assert!(!sharded.contains_edge(&[0, 1]));
        assert_eq!(sharded.num_edges(), 0);
    }

    #[test]
    fn env_shards_parses() {
        // Not set in the test environment unless CI exports it; both are valid.
        let n = env_shards();
        assert!(n >= 1);
    }
}
