//! Mutable construction of [`Hypergraph`]s.
//!
//! The builder performs the paper's offline preprocessing (§IV, §VII-A):
//! vertices inside a hyperedge are deduplicated, repeated hyperedges are
//! dropped (or rejected, per [`DuplicatePolicy`]), hyperedges are grouped
//! into signature partitions, and the inverted indices plus the global
//! incidence CSR are built.

use crate::error::{HypergraphError, Result};
use crate::fxhash::FxHashMap;
use crate::hypergraph::{EdgeLocation, Hypergraph};
use crate::ids::{EdgeId, Label, SignatureId, VertexId};
use crate::partition::Partition;
use crate::signature::{Signature, SignatureInterner};

/// How the builder treats inputs the paper's preprocessing would clean up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicatePolicy {
    /// Silently drop repeated hyperedges and repeated vertices within a
    /// hyperedge — mirrors the paper's dataset preprocessing.
    #[default]
    Dedupe,
    /// Return an error on any duplicate.
    Reject,
}

/// Incrementally builds a [`Hypergraph`].
#[derive(Debug, Default)]
pub struct HypergraphBuilder {
    labels: Vec<Label>,
    edges: Vec<Vec<u32>>,
    policy: DuplicatePolicy,
    seen_edges: FxHashMap<Vec<u32>, ()>,
}

impl HypergraphBuilder {
    /// Creates an empty builder with the default (paper-style) policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with an explicit duplicate policy.
    pub fn with_policy(policy: DuplicatePolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// Adds a vertex with `label`, returning its id (dense, in call order).
    pub fn add_vertex(&mut self, label: Label) -> VertexId {
        let id = VertexId::from_index(self.labels.len());
        self.labels.push(label);
        id
    }

    /// Adds `n` vertices all labelled `label`; returns the first id.
    pub fn add_vertices(&mut self, n: usize, label: Label) -> VertexId {
        let first = VertexId::from_index(self.labels.len());
        self.labels.extend(std::iter::repeat_n(label, n));
        first
    }

    /// Number of vertices added so far.
    pub fn num_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Number of (kept) hyperedges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a hyperedge over raw vertex ids. Vertices may arrive unsorted;
    /// duplicates inside the edge and repeated edges are handled per policy.
    ///
    /// Returns the prospective edge id, or `None` if a duplicate edge was
    /// dropped under [`DuplicatePolicy::Dedupe`].
    pub fn add_edge(&mut self, mut vertices: Vec<u32>) -> Result<Option<EdgeId>> {
        let edge_index = self.edges.len();
        if vertices.is_empty() {
            return Err(HypergraphError::EmptyHyperedge { edge_index });
        }
        for &v in &vertices {
            if v as usize >= self.labels.len() {
                return Err(HypergraphError::UnknownVertex {
                    vertex: v,
                    edge_index,
                });
            }
        }
        vertices.sort_unstable();
        let before = vertices.len();
        vertices.dedup();
        if vertices.len() != before && self.policy == DuplicatePolicy::Reject {
            return Err(HypergraphError::DuplicateVertex {
                vertex: first_dup(&vertices, before),
            });
        }
        if self.seen_edges.contains_key(&vertices) {
            return match self.policy {
                DuplicatePolicy::Dedupe => Ok(None),
                DuplicatePolicy::Reject => Err(HypergraphError::DuplicateHyperedge { edge_index }),
            };
        }
        self.seen_edges.insert(vertices.clone(), ());
        self.edges.push(vertices);
        Ok(Some(EdgeId::from_index(edge_index)))
    }

    /// Adds a hyperedge over typed vertex ids.
    pub fn add_edge_ids(
        &mut self,
        vertices: impl IntoIterator<Item = VertexId>,
    ) -> Result<Option<EdgeId>> {
        self.add_edge(vertices.into_iter().map(VertexId::raw).collect())
    }

    /// Finalises the hypergraph: partitions by signature, builds inverted
    /// indices, the edge locator and the global incidence CSR.
    pub fn build(self) -> Result<Hypergraph> {
        let Self { labels, edges, .. } = self;

        // Group edges by signature, preserving global insertion order ids.
        let mut interner = SignatureInterner::new();
        let mut groups: Vec<(Vec<Vec<u32>>, Vec<EdgeId>)> = Vec::new();
        let mut locator = vec![
            EdgeLocation {
                signature: SignatureId::new(0),
                row: 0
            };
            edges.len()
        ];
        for (i, edge) in edges.into_iter().enumerate() {
            let signature = Signature::new(edge.iter().map(|&v| labels[v as usize]).collect());
            let sid = interner.intern(signature);
            if sid.index() == groups.len() {
                groups.push((Vec::new(), Vec::new()));
            }
            let (rows, ids) = &mut groups[sid.index()];
            locator[i] = EdgeLocation {
                signature: sid,
                row: rows.len() as u32,
            };
            rows.push(edge);
            ids.push(EdgeId::from_index(i));
        }

        let partitions: Vec<std::sync::Arc<Partition>> = groups
            .into_iter()
            .enumerate()
            .map(|(sid, (rows, ids))| {
                let arity = interner.resolve(SignatureId::from_index(sid)).arity() as u32;
                std::sync::Arc::new(Partition::new(
                    SignatureId::from_index(sid),
                    arity,
                    rows,
                    ids,
                    &labels,
                ))
            })
            .collect();

        Ok(Hypergraph::assemble(labels, interner, partitions, locator))
    }
}

fn first_dup(sorted_dedup: &[u32], _before: usize) -> u32 {
    // After dedup we cannot recover which value repeated without the
    // original; report the first element as the offending vertex set member.
    sorted_dedup.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_empty() {
        let h = HypergraphBuilder::new().build().unwrap();
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.num_edges(), 0);
        assert_eq!(h.num_labels(), 0);
        assert_eq!(h.average_arity(), 0.0);
        assert_eq!(h.max_arity(), 0);
    }

    #[test]
    fn unknown_vertex_rejected() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        let err = b.add_edge(vec![0, 5]).unwrap_err();
        assert!(matches!(
            err,
            HypergraphError::UnknownVertex { vertex: 5, .. }
        ));
    }

    #[test]
    fn empty_edge_rejected() {
        let mut b = HypergraphBuilder::new();
        let err = b.add_edge(vec![]).unwrap_err();
        assert!(matches!(err, HypergraphError::EmptyHyperedge { .. }));
    }

    #[test]
    fn dedupe_policy_drops_duplicates() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, Label::new(0));
        assert!(b.add_edge(vec![0, 1]).unwrap().is_some());
        // Same set, different order → dropped.
        assert!(b.add_edge(vec![1, 0]).unwrap().is_none());
        // Repeated vertex inside an edge is deduped: {2,2} → {2}.
        assert!(b.add_edge(vec![2, 2]).unwrap().is_some());
        let h = b.build().unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.edge_vertices(EdgeId::new(1)), &[2]);
    }

    #[test]
    fn reject_policy_errors_on_duplicates() {
        let mut b = HypergraphBuilder::with_policy(DuplicatePolicy::Reject);
        b.add_vertices(3, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        assert!(matches!(
            b.add_edge(vec![1, 0]).unwrap_err(),
            HypergraphError::DuplicateHyperedge { .. }
        ));
        assert!(matches!(
            b.add_edge(vec![2, 2]).unwrap_err(),
            HypergraphError::DuplicateVertex { .. }
        ));
    }

    #[test]
    fn global_ids_follow_insertion_order() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0)); // v0: L0
        b.add_vertex(Label::new(1)); // v1: L1
        b.add_vertex(Label::new(0)); // v2: L0
        let e0 = b.add_edge(vec![0, 1]).unwrap().unwrap(); // sig {L0,L1}
        let e1 = b.add_edge(vec![0, 2]).unwrap().unwrap(); // sig {L0,L0}
        let e2 = b.add_edge(vec![1, 2]).unwrap().unwrap(); // sig {L0,L1}
        assert_eq!(
            (e0, e1, e2),
            (EdgeId::new(0), EdgeId::new(1), EdgeId::new(2))
        );
        let h = b.build().unwrap();
        assert_eq!(h.edge_vertices(EdgeId::new(0)), &[0, 1]);
        assert_eq!(h.edge_vertices(EdgeId::new(1)), &[0, 2]);
        assert_eq!(h.edge_vertices(EdgeId::new(2)), &[1, 2]);
        // Two partitions; e0 and e2 share one.
        assert_eq!(h.partitions().len(), 2);
        assert_eq!(
            h.edge_signature(EdgeId::new(0)),
            h.edge_signature(EdgeId::new(2))
        );
        assert_ne!(
            h.edge_signature(EdgeId::new(0)),
            h.edge_signature(EdgeId::new(1))
        );
    }

    #[test]
    fn incidence_lists_sorted_by_global_id() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(4, Label::new(0));
        b.add_vertex(Label::new(1));
        // Insert edges whose partition order differs from global order.
        b.add_edge(vec![0, 4]).unwrap(); // g0, sig {L0,L1}
        b.add_edge(vec![0, 1]).unwrap(); // g1, sig {L0,L0}
        b.add_edge(vec![0, 2]).unwrap(); // g2, sig {L0,L0}
        b.add_edge(vec![0, 3, 4]).unwrap(); // g3, arity 3
        let h = b.build().unwrap();
        assert_eq!(h.incident_edges(VertexId::new(0)), &[0, 1, 2, 3]);
        assert_eq!(h.incident_edges(VertexId::new(4)), &[0, 3]);
        assert_eq!(h.degree(VertexId::new(0)), 4);
    }

    #[test]
    fn num_labels_spans_alphabet() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(7));
        assert_eq!(b.build().unwrap().num_labels(), 8);
    }
}
