//! Matching-order strategies for the match-by-vertex baselines.
//!
//! Each strategy reimplements the ordering idea of its namesake algorithm,
//! adapted to hypergraphs (orders are over query *vertices* here, unlike
//! HGMatch's hyperedge orders):
//!
//! * **CFL** \[9\]: core-forest-leaf decomposition — dense "core" vertices
//!   (query degree ≥ 2) match first, tree-like forest vertices next,
//!   degree-1 leaves last, postponing Cartesian products.
//! * **DAF** \[31\]: root the query at the vertex minimising
//!   `|C(u)| / d(u)`, then order by BFS DAG layers (parents before
//!   children); DAF's failing-set pruning is enabled with this strategy.
//! * **CECI** \[8\]: BFS from the vertex with the smallest candidate set,
//!   ties broken towards rarer candidates — the order along which CECI
//!   builds its embedding-cluster index.
//!
//! All strategies emit *connected* orders whenever the query is connected:
//! every vertex (after the first) shares a hyperedge with an earlier one,
//! which the framework's adjacency pruning relies on.

use hgmatch_hypergraph::{Hypergraph, VertexId};

/// Ordering strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderingStrategy {
    /// Query-vertex order as given (testing only).
    Naive,
    /// CFL-style core-forest-leaf order.
    Cfl,
    /// DAF-style DAG/BFS order (enables failing-set pruning).
    Daf,
    /// CECI-style BFS order.
    Ceci,
}

impl OrderingStrategy {
    /// Whether the framework should run DAF's failing-set pruning.
    pub fn uses_failing_sets(self) -> bool {
        matches!(self, Self::Daf)
    }
}

/// Computes a matching order over query vertices.
///
/// `candidates[u]` are the IHS-filtered candidate sets, used for
/// cardinality-based tie-breaking.
pub fn compute_order(
    strategy: OrderingStrategy,
    query: &Hypergraph,
    candidates: &[Vec<u32>],
) -> Vec<u32> {
    let n = query.num_vertices();
    match strategy {
        OrderingStrategy::Naive => (0..n as u32).collect(),
        OrderingStrategy::Cfl => cfl_order(query, candidates),
        OrderingStrategy::Daf => {
            bfs_order(query, candidates, |u, c| {
                // |C(u)| / d(u), scaled to integers for a total order.
                let d = query.degree(VertexId::new(u)).max(1);
                (c[u as usize].len() * 1000 / d, u)
            })
        }
        OrderingStrategy::Ceci => {
            bfs_order(query, candidates, |u, c| (c[u as usize].len() * 1000, u))
        }
    }
}

/// Greedy connected order: start at `root`, repeatedly append the adjacent
/// unplaced vertex with the smallest key; falls back to the smallest-key
/// unplaced vertex when the query is disconnected.
fn connected_greedy(query: &Hypergraph, root: u32, key: impl Fn(u32) -> (usize, u32)) -> Vec<u32> {
    let n = query.num_vertices();
    let mut order = vec![root];
    let mut placed = vec![false; n];
    placed[root as usize] = true;
    while order.len() < n {
        let mut best: Option<((usize, u32), u32)> = None;
        for &u in &order {
            for &w in &query.adjacent_vertices(VertexId::new(u)) {
                if placed[w as usize] {
                    continue;
                }
                let k = key(w);
                if best.is_none_or(|(bk, _)| k < bk) {
                    best = Some((k, w));
                }
            }
        }
        let next = match best {
            Some((_, w)) => w,
            None => (0..n as u32)
                .filter(|&u| !placed[u as usize])
                .min_by_key(|&u| key(u))
                .expect("unplaced vertex exists"),
        };
        placed[next as usize] = true;
        order.push(next);
    }
    order
}

fn cfl_order(query: &Hypergraph, candidates: &[Vec<u32>]) -> Vec<u32> {
    let n = query.num_vertices();
    let core: Vec<u32> = (0..n as u32)
        .filter(|&u| query.degree(VertexId::new(u)) >= 2)
        .collect();
    // Root: core vertex minimising |C(u)|/d(u); whole query if no core.
    let everything: Vec<u32>;
    let pool: &[u32] = if core.is_empty() {
        everything = (0..n as u32).collect();
        &everything
    } else {
        &core
    };
    let root = *pool
        .iter()
        .min_by_key(|&&u| {
            let d = query.degree(VertexId::new(u)).max(1);
            (candidates[u as usize].len() * 1000 / d, u)
        })
        .expect("query has vertices");
    let is_core = {
        let mut v = vec![false; n];
        for &u in &core {
            v[u as usize] = true;
        }
        v
    };
    // Core first (key biased low), then forest, leaves (degree 1) last.
    connected_greedy(query, root, |u| {
        let deg = query.degree(VertexId::new(u));
        let tier = if is_core[u as usize] {
            0
        } else if deg > 1 {
            1
        } else {
            2
        };
        (tier * 1_000_000 + candidates[u as usize].len(), u)
    })
}

fn bfs_order(
    query: &Hypergraph,
    candidates: &[Vec<u32>],
    key: impl Fn(u32, &[Vec<u32>]) -> (usize, u32),
) -> Vec<u32> {
    let n = query.num_vertices();
    let root = (0..n as u32)
        .min_by_key(|&u| key(u, candidates))
        .expect("non-empty query");
    // BFS layering, then stable order: (layer, key).
    let mut layer = vec![usize::MAX; n];
    layer[root as usize] = 0;
    let mut frontier = vec![root];
    let mut depth = 0;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &w in &query.adjacent_vertices(VertexId::new(u)) {
                if layer[w as usize] == usize::MAX {
                    layer[w as usize] = depth;
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    // Disconnected remnants go to the last layer.
    for l in layer.iter_mut() {
        if *l == usize::MAX {
            *l = depth + 1;
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&u| (layer[u as usize], key(u, candidates)));
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ihs::build_candidate_sets;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_pair() -> (Hypergraph, Hypergraph) {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        let data = b.build().unwrap();

        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        let query = b.build().unwrap();
        (data, query)
    }

    fn assert_is_permutation(order: &[u32], n: usize) {
        let mut sorted = order.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }

    fn assert_connected_order(query: &Hypergraph, order: &[u32]) {
        for (i, &u) in order.iter().enumerate().skip(1) {
            let adj = query.adjacent_vertices(VertexId::new(u));
            assert!(
                order[..i].iter().any(|&w| adj.contains(&w)),
                "vertex {u} at position {i} is not connected to the prefix"
            );
        }
    }

    #[test]
    fn all_strategies_emit_connected_permutations() {
        let (data, query) = paper_pair();
        let cands = build_candidate_sets(&data, &query);
        for strategy in [
            OrderingStrategy::Cfl,
            OrderingStrategy::Daf,
            OrderingStrategy::Ceci,
        ] {
            let order = compute_order(strategy, &query, &cands);
            assert_is_permutation(&order, query.num_vertices());
            assert_connected_order(&query, &order);
        }
    }

    #[test]
    fn naive_is_identity() {
        let (data, query) = paper_pair();
        let cands = build_candidate_sets(&data, &query);
        assert_eq!(
            compute_order(OrderingStrategy::Naive, &query, &cands),
            vec![0, 1, 2, 3, 4]
        );
    }

    #[test]
    fn cfl_puts_leaves_last() {
        let (data, query) = paper_pair();
        let cands = build_candidate_sets(&data, &query);
        let order = compute_order(OrderingStrategy::Cfl, &query, &cands);
        // u3 is the only degree-1 leaf in the query; it must come last.
        assert_eq!(*order.last().unwrap(), 3);
    }

    #[test]
    fn only_daf_uses_failing_sets() {
        assert!(OrderingStrategy::Daf.uses_failing_sets());
        assert!(!OrderingStrategy::Cfl.uses_failing_sets());
        assert!(!OrderingStrategy::Ceci.uses_failing_sets());
        assert!(!OrderingStrategy::Naive.uses_failing_sets());
    }

    #[test]
    fn singleton_query_orders() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        b.add_edge(vec![0]).unwrap();
        let q = b.build().unwrap();
        let cands = vec![vec![0u32]];
        for strategy in [
            OrderingStrategy::Naive,
            OrderingStrategy::Cfl,
            OrderingStrategy::Daf,
            OrderingStrategy::Ceci,
        ] {
            assert_eq!(compute_order(strategy, &q, &cands), vec![0]);
        }
    }
}
