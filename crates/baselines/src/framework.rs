//! The generic match-by-vertex backtracking framework (paper §III-B,
//! Algorithm 1 extended by Theorem III.2), shared by the CFL-H / DAF-H /
//! CECI-H baselines.
//!
//! The framework recursively maps query vertices to data vertices along a
//! strategy-chosen matching order. At each assignment it checks:
//!
//! * injectivity (a used-by map doubles as DAF's conflict attribution);
//! * adjacency — if `u` shares a query hyperedge with an already-matched
//!   `u'`, then `f(u)` must share a data hyperedge with `f(u')`;
//! * the subhypergraph constraint of Theorem III.2 — whenever the
//!   assignment completes a query hyperedge, the mapped vertex set must be
//!   a data hyperedge (this is the *delayed hyperedge verification* the
//!   paper identifies as the framework's weakness);
//! * vertex-type symmetry breaking, so embeddings are counted as hyperedge
//!   tuples exactly like HGMatch (see the crate docs).
//!
//! With [`OrderingStrategy::Daf`] the framework additionally maintains
//! DAF-style *failing sets*: when a fully-failed subtree's failure does not
//! involve the current vertex, its remaining candidates are skipped.

use std::time::{Duration, Instant};

use hgmatch_hypergraph::setops;
use hgmatch_hypergraph::{EdgeId, Hypergraph, VertexId};

use crate::ihs::build_candidate_sets;
use crate::ordering::{compute_order, OrderingStrategy};

/// Recursions between timeout checks.
const CHECK_INTERVAL: u64 = 2048;

/// Query-vertex count up to which DAF's failing-set pruning is available
/// (failing sets pack query vertices into a `u64`). Larger queries still
/// match correctly — failing-set pruning is silently disabled.
pub const MAX_FAILING_SET_VERTICES: usize = 64;

/// Bit for query vertex `u` in a failing-set mask (0 beyond the mask width;
/// only consulted when failing sets are active, i.e. `nq ≤ 64`).
#[inline]
fn bit(u: u32) -> u64 {
    if u < 64 {
        1u64 << u
    } else {
        0
    }
}

/// Result of a baseline run.
#[derive(Debug, Clone, Default)]
pub struct BaselineResult {
    /// Embeddings found (hyperedge tuples, matching HGMatch semantics).
    pub count: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// Whether the timeout fired (count is then a lower bound).
    pub timed_out: bool,
    /// Recursive calls performed (search-space size indicator).
    pub recursions: u64,
}

/// Symmetry-breaking constraint of position `i` against an earlier position.
#[derive(Debug, Clone, Copy)]
struct SymmetryConstraint {
    /// Earlier matching-order position.
    earlier_pos: u32,
    /// `true` ⇒ require `f(earlier) < f(current)`; `false` ⇒ `>`.
    earlier_is_smaller: bool,
}

/// A query hyperedge that becomes fully mapped at some position.
#[derive(Debug, Clone)]
struct Completion {
    /// Mask of the edge's query vertices (for failing sets).
    vertex_mask: u64,
    /// The edge's query vertices.
    vertices: Vec<u32>,
}

/// Per-position static matching structure.
#[derive(Debug, Clone)]
struct PositionInfo {
    /// Query vertex matched at this position.
    vertex: u32,
    /// Earlier positions whose query vertices are adjacent to this one.
    adjacent_earlier: Vec<u32>,
    /// Symmetry-breaking constraints against earlier positions.
    symmetry: Vec<SymmetryConstraint>,
    /// Query hyperedges that complete at this position.
    completions: Vec<Completion>,
}

/// A compiled match-by-vertex matcher for one (data, query) pair.
#[derive(Debug)]
pub struct VertexMatcher<'a> {
    data: &'a Hypergraph,
    query: &'a Hypergraph,
    candidates: Vec<Vec<u32>>,
    positions: Vec<PositionInfo>,
    use_failing_sets: bool,
    feasible: bool,
}

/// Outcome of exploring one subtree (for failing-set pruning).
enum Explored {
    /// At least one embedding was found below — no pruning possible.
    FoundSome,
    /// The whole subtree failed; the mask names the query vertices whose
    /// assignments participated in every failure.
    Failed(u64),
}

struct SearchCtx<'a, 'b, F: FnMut(&[u32])> {
    matcher: &'a VertexMatcher<'b>,
    /// `mapping[u]` = data vertex for query vertex `u` (`u32::MAX` unset).
    mapping: Vec<u32>,
    /// `used_by[v]` = query vertex occupying data vertex `v`.
    used_by: Vec<u32>,
    deadline: Option<Instant>,
    recursions: u64,
    count: u64,
    timed_out: bool,
    on_match: F,
}

impl<'a> VertexMatcher<'a> {
    /// Compiles a matcher: IHS candidate sets, matching order, adjacency /
    /// symmetry / completion tables.
    ///
    /// # Panics
    /// Panics if the query has no vertices.
    pub fn new(data: &'a Hypergraph, query: &'a Hypergraph, strategy: OrderingStrategy) -> Self {
        let nq = query.num_vertices();
        assert!(nq > 0, "query must have vertices");
        let failing_sets_available = nq <= MAX_FAILING_SET_VERTICES;

        let candidates = build_candidate_sets(data, query);
        let feasible = candidates.iter().all(|c| !c.is_empty());
        let order = compute_order(strategy, query, &candidates);
        let mut pos_of = vec![0u32; nq];
        for (i, &u) in order.iter().enumerate() {
            pos_of[u as usize] = i as u32;
        }

        // Vertex type classes: (label, incident query edge set).
        let mut class_key: Vec<(u32, Vec<u32>)> = (0..nq)
            .map(|u| {
                (
                    query.label(VertexId::from_index(u)).raw(),
                    query.incident_edges(VertexId::from_index(u)).to_vec(),
                )
            })
            .collect();
        // For each vertex, its class predecessor/successor by vertex id.
        let mut class_links: Vec<(Option<u32>, Option<u32>)> = vec![(None, None); nq];
        for u in 0..nq {
            for w in (0..u).rev() {
                if class_key[w] == class_key[u] {
                    class_links[u].0 = Some(w as u32);
                    break;
                }
            }
            for w in u + 1..nq {
                if class_key[w] == class_key[u] {
                    class_links[u].1 = Some(w as u32);
                    break;
                }
            }
        }
        class_key.clear();

        let positions: Vec<PositionInfo> = order
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                let adjacent_earlier: Vec<u32> = query
                    .adjacent_vertices(VertexId::new(u))
                    .iter()
                    .map(|&w| pos_of[w as usize])
                    .filter(|&p| p < i as u32)
                    .collect();

                let mut symmetry = Vec::new();
                if let (Some(prev), _) = class_links[u as usize] {
                    if pos_of[prev as usize] < i as u32 {
                        symmetry.push(SymmetryConstraint {
                            earlier_pos: pos_of[prev as usize],
                            earlier_is_smaller: true,
                        });
                    }
                }
                if let (_, Some(next)) = class_links[u as usize] {
                    if pos_of[next as usize] < i as u32 {
                        symmetry.push(SymmetryConstraint {
                            earlier_pos: pos_of[next as usize],
                            earlier_is_smaller: false,
                        });
                    }
                }

                // Query edges whose deepest vertex (by order) is u.
                let completions = (0..query.num_edges())
                    .filter_map(|e| {
                        let vs = query.edge_vertices(EdgeId::from_index(e));
                        let deepest = vs
                            .iter()
                            .map(|&w| pos_of[w as usize])
                            .max()
                            .expect("non-empty edge");
                        (deepest == i as u32).then(|| Completion {
                            vertex_mask: vs.iter().fold(0u64, |m, &w| m | bit(w)),
                            vertices: vs.to_vec(),
                        })
                    })
                    .collect();

                PositionInfo {
                    vertex: u,
                    adjacent_earlier,
                    symmetry,
                    completions,
                }
            })
            .collect();

        Self {
            data,
            query,
            candidates,
            positions,
            use_failing_sets: strategy.uses_failing_sets() && failing_sets_available,
            feasible,
        }
    }

    /// The IHS candidate sets (for inspection / ablation).
    pub fn candidate_sets(&self) -> &[Vec<u32>] {
        &self.candidates
    }

    /// The matching order over query vertices.
    pub fn order(&self) -> Vec<u32> {
        self.positions.iter().map(|p| p.vertex).collect()
    }

    /// Counts all embeddings (hyperedge tuples).
    pub fn count(&self, timeout: Option<Duration>) -> BaselineResult {
        self.run(timeout, |_| {})
    }

    /// Enumerates all embeddings as *vertex mappings* (`result[u]` = data
    /// vertex for query vertex `u`), one canonical mapping per hyperedge
    /// tuple.
    pub fn enumerate(&self, timeout: Option<Duration>) -> (Vec<Vec<u32>>, BaselineResult) {
        let mut out = Vec::new();
        let result = self.run(timeout, |mapping| out.push(mapping.to_vec()));
        (out, result)
    }

    /// Runs the search, invoking `on_match` with the query-vertex → data-
    /// vertex mapping of every embedding.
    pub fn run<F: FnMut(&[u32])>(&self, timeout: Option<Duration>, on_match: F) -> BaselineResult {
        let start = Instant::now();
        let mut result = BaselineResult::default();
        if !self.feasible {
            result.elapsed = start.elapsed();
            return result;
        }
        let mut ctx = SearchCtx {
            matcher: self,
            mapping: vec![u32::MAX; self.query.num_vertices()],
            used_by: vec![u32::MAX; self.data.num_vertices()],
            deadline: timeout.map(|t| start + t),
            recursions: 0,
            count: 0,
            timed_out: false,
            on_match,
        };
        ctx.explore(0);
        result.count = ctx.count;
        result.recursions = ctx.recursions;
        result.timed_out = ctx.timed_out;
        result.elapsed = start.elapsed();
        result
    }
}

impl<F: FnMut(&[u32])> SearchCtx<'_, '_, F> {
    fn explore(&mut self, pos: usize) -> Explored {
        self.recursions += 1;
        if self.recursions.is_multiple_of(CHECK_INTERVAL) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.timed_out = true;
                }
            }
        }
        if self.timed_out {
            // Treat as "found" so no ancestor prunes based on a truncated
            // subtree.
            return Explored::FoundSome;
        }

        let m = self.matcher;
        if pos == m.positions.len() {
            self.count += 1;
            (self.on_match)(&self.mapping);
            return Explored::FoundSome;
        }

        let info = &m.positions[pos];
        let u = info.vertex;
        let u_bit = bit(u);
        let mut found = false;
        let mut failing: u64 = u_bit;

        'candidates: for &v in &m.candidates[u as usize] {
            // Injectivity.
            let owner = self.used_by[v as usize];
            if owner != u32::MAX {
                failing |= u_bit | bit(owner);
                continue;
            }
            // Symmetry breaking within the vertex type class.
            for sc in &info.symmetry {
                let earlier_u = m.positions[sc.earlier_pos as usize].vertex;
                let earlier_v = self.mapping[earlier_u as usize];
                let ok = if sc.earlier_is_smaller {
                    earlier_v < v
                } else {
                    v < earlier_v
                };
                if !ok {
                    failing |= u_bit | bit(earlier_u);
                    continue 'candidates;
                }
            }
            // Adjacency: share a hyperedge with every matched neighbour.
            for &p in &info.adjacent_earlier {
                let earlier_u = m.positions[p as usize].vertex;
                let earlier_v = self.mapping[earlier_u as usize];
                let he_v = m.data.incident_edges(VertexId::new(v));
                let he_w = m.data.incident_edges(VertexId::new(earlier_v));
                if !setops::intersects(he_v, he_w) {
                    failing |= u_bit | bit(earlier_u);
                    continue 'candidates;
                }
            }
            // Hyperedge completion (Theorem III.2) — the delayed check.
            self.mapping[u as usize] = v;
            let mut completion_ok = true;
            let mut mapped = Vec::new();
            for completion in &info.completions {
                mapped.clear();
                mapped.extend(
                    completion
                        .vertices
                        .iter()
                        .map(|&w| self.mapping[w as usize]),
                );
                mapped.sort_unstable();
                if m.data.find_edge(&mapped).is_none() {
                    failing |= completion.vertex_mask;
                    completion_ok = false;
                    break;
                }
            }
            if !completion_ok {
                self.mapping[u as usize] = u32::MAX;
                continue;
            }

            self.used_by[v as usize] = u;
            let child = self.explore(pos + 1);
            self.used_by[v as usize] = u32::MAX;
            self.mapping[u as usize] = u32::MAX;

            match child {
                Explored::FoundSome => found = true,
                Explored::Failed(child_set) => {
                    if m.use_failing_sets && !found && child_set & u_bit == 0 {
                        // The subtree failed for reasons independent of u's
                        // assignment: trying other candidates for u cannot
                        // help (DAF's failing-set rule).
                        return Explored::Failed(child_set);
                    }
                    failing |= child_set;
                }
            }
        }

        if found {
            Explored::FoundSome
        } else {
            Explored::Failed(failing)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_pair() -> (Hypergraph, Hypergraph) {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        let data = b.build().unwrap();

        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        let query = b.build().unwrap();
        (data, query)
    }

    #[test]
    fn paper_example_all_strategies() {
        let (data, query) = paper_pair();
        for strategy in [
            OrderingStrategy::Naive,
            OrderingStrategy::Cfl,
            OrderingStrategy::Daf,
            OrderingStrategy::Ceci,
        ] {
            let matcher = VertexMatcher::new(&data, &query, strategy);
            let result = matcher.count(None);
            assert_eq!(result.count, 2, "{strategy:?}");
            assert!(!result.timed_out);
        }
    }

    #[test]
    fn enumerate_returns_canonical_mappings() {
        let (data, query) = paper_pair();
        let matcher = VertexMatcher::new(&data, &query, OrderingStrategy::Cfl);
        let (mappings, result) = matcher.enumerate(None);
        assert_eq!(result.count, 2);
        assert_eq!(mappings.len(), 2);
        for mapping in &mappings {
            // Every query edge must map onto a data edge.
            for e in 0..query.num_edges() {
                let mut mapped: Vec<u32> = query
                    .edge_vertices(EdgeId::from_index(e))
                    .iter()
                    .map(|&u| mapping[u as usize])
                    .collect();
                mapped.sort_unstable();
                assert!(data.find_edge(&mapped).is_some());
            }
        }
    }

    #[test]
    fn symmetry_breaking_dedupes_automorphic_mappings() {
        // Query: single edge {A, A}. Data: single edge {A, A}. Two vertex
        // bijections exist but only one hyperedge tuple.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        let data = b.build().unwrap();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        let query = b.build().unwrap();
        for strategy in [OrderingStrategy::Naive, OrderingStrategy::Daf] {
            let result = VertexMatcher::new(&data, &query, strategy).count(None);
            assert_eq!(result.count, 1, "{strategy:?}");
        }
    }

    #[test]
    fn distinguishable_vertices_not_deduped() {
        // Query: path e0={u0,u1}, e1={u1,u2}, all label A. u0 and u2 have
        // different incident edges, so mappings that swap their images are
        // distinct embeddings (different edge tuples).
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![1, 2]).unwrap();
        let data = b.build().unwrap();
        let query = {
            let mut b = HypergraphBuilder::new();
            b.add_vertices(3, Label::new(0));
            b.add_edge(vec![0, 1]).unwrap();
            b.add_edge(vec![1, 2]).unwrap();
            b.build().unwrap()
        };
        let result = VertexMatcher::new(&data, &query, OrderingStrategy::Cfl).count(None);
        // (e0,e1) and (e1,e0): both orderings of the path match.
        assert_eq!(result.count, 2);
    }

    #[test]
    fn infeasible_query_is_zero_fast() {
        let (data, _) = paper_pair();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(9));
        b.add_edge(vec![0, 1]).unwrap();
        let query = b.build().unwrap();
        let result = VertexMatcher::new(&data, &query, OrderingStrategy::Daf).count(None);
        assert_eq!(result.count, 0);
        assert_eq!(result.recursions, 0);
    }

    #[test]
    fn timeout_reports_truncation() {
        // A dense instance with a tiny timeout must set timed_out (or
        // finish legitimately — accept either, but never wrongly count).
        let mut b = HypergraphBuilder::new();
        b.add_vertices(12, Label::new(0));
        for i in 0..12u32 {
            for j in i + 1..12 {
                b.add_edge(vec![i, j]).unwrap();
            }
        }
        let data = b.build().unwrap();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(4, Label::new(0));
        for i in 0..4u32 {
            for j in i + 1..4 {
                b.add_edge(vec![i, j]).unwrap();
            }
        }
        let query = b.build().unwrap();
        let matcher = VertexMatcher::new(&data, &query, OrderingStrategy::Ceci);
        let full = matcher.count(None);
        assert!(full.count > 0);
        let quick = matcher.count(Some(Duration::from_nanos(1)));
        assert!(quick.timed_out || quick.count == full.count);
    }

    #[test]
    fn oversized_query_matches_without_failing_sets() {
        // 70 query vertices exceed the failing-set mask width; matching
        // must still be correct (failing sets silently disabled). Distinct
        // labels keep the candidate sets singleton so the test is instant —
        // a same-label 70-clique would be exponential for match-by-vertex,
        // which is precisely the paper's argument against this framework.
        let mut b = HypergraphBuilder::new();
        for l in 0..70u32 {
            b.add_vertex(Label::new(l));
        }
        b.add_edge((0..70).collect()).unwrap();
        b.add_edge(vec![0, 1]).unwrap();
        let query = b.build().unwrap();
        let data = query.clone();
        for strategy in [OrderingStrategy::Naive, OrderingStrategy::Daf] {
            let result = VertexMatcher::new(&data, &query, strategy).count(None);
            assert_eq!(result.count, 1, "{strategy:?}");
        }
    }
}
