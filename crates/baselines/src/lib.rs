//! # hgmatch-baselines
//!
//! Match-by-vertex subhypergraph matching baselines, reproducing the
//! comparison systems of the HGMatch paper's evaluation (§VII):
//!
//! * the generic backtracking framework of §III-B (Algorithm 1 extended to
//!   hypergraphs through the Theorem III.2 constraint), in [`framework`];
//! * the IHS candidate-vertex filter of Ha et al. \[30\], in [`ihs`];
//! * [`CFL`](ordering)-, [`DAF`](ordering)- and [`CECI`](ordering)-style
//!   matching-order strategies (with DAF's failing-set pruning), giving the
//!   `CFL-H`, `DAF-H` and `CECI-H` baselines;
//! * `RapidMatch-H` — matching on the bipartite conversion of both query
//!   and data hypergraphs (paper Fig. 2), in [`rapid`];
//! * a brute-force oracle for testing, in [`bruteforce`].
//!
//! ## Embedding semantics
//!
//! HGMatch counts embeddings as *tuples of matched data hyperedges*
//! (`m = (e_H1, …, e_Hn)`, paper §III-A). A vertex-at-a-time backtracking
//! enumerates injective vertex mappings, and several vertex mappings can
//! induce the same hyperedge tuple: two query vertices are interchangeable
//! exactly when they share a label and the same set of incident query
//! hyperedges. All baselines therefore break this symmetry — within each
//! such *vertex type class*, mapped data vertices must be ascending — so
//! that every hyperedge tuple is enumerated exactly once and counts agree
//! with HGMatch's. (This also prunes the baselines' search, which is
//! conservative for the paper's comparison: the baselines can only get
//! faster.)

pub mod bruteforce;
pub mod framework;
pub mod ihs;
pub mod ordering;
pub mod rapid;

use std::time::Duration;

use hgmatch_hypergraph::Hypergraph;

pub use framework::{BaselineResult, VertexMatcher};
pub use ordering::OrderingStrategy;

/// The baseline algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineAlgorithm {
    /// CFL \[9\] extended per §III-B: core-forest-leaf-style ordering.
    CflH,
    /// DAF \[31\] extended: DAG (BFS) ordering plus failing-set pruning.
    DafH,
    /// CECI \[8\] extended: BFS ordering from the rarest-candidate root.
    CeciH,
    /// RapidMatch \[71\] on the bipartite conversion of query and data.
    RapidMatchH,
}

impl BaselineAlgorithm {
    /// All four baselines, in the paper's reporting order.
    pub fn all() -> [BaselineAlgorithm; 4] {
        [Self::RapidMatchH, Self::DafH, Self::CflH, Self::CeciH]
    }

    /// Display name used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Self::CflH => "CFL-H",
            Self::DafH => "DAF-H",
            Self::CeciH => "CECI-H",
            Self::RapidMatchH => "RapidMatch",
        }
    }
}

/// Runs a baseline, counting all embeddings (hyperedge tuples).
pub fn run_baseline(
    algorithm: BaselineAlgorithm,
    data: &Hypergraph,
    query: &Hypergraph,
    timeout: Option<Duration>,
) -> BaselineResult {
    match algorithm {
        BaselineAlgorithm::CflH => {
            VertexMatcher::new(data, query, OrderingStrategy::Cfl).count(timeout)
        }
        BaselineAlgorithm::DafH => {
            VertexMatcher::new(data, query, OrderingStrategy::Daf).count(timeout)
        }
        BaselineAlgorithm::CeciH => {
            VertexMatcher::new(data, query, OrderingStrategy::Ceci).count(timeout)
        }
        BaselineAlgorithm::RapidMatchH => rapid::count(data, query, timeout),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(BaselineAlgorithm::CflH.name(), "CFL-H");
        assert_eq!(BaselineAlgorithm::RapidMatchH.name(), "RapidMatch");
        assert_eq!(BaselineAlgorithm::all().len(), 4);
    }
}
