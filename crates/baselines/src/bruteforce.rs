//! Brute-force reference oracle.
//!
//! Enumerates *every* injective, label-preserving vertex mapping by plain
//! backtracking with no pruning beyond labels and injectivity, verifies the
//! subhypergraph condition at the end, and collects the induced hyperedge
//! tuples in a set. Exponential — strictly for testing the real engines on
//! tiny instances.

use std::collections::BTreeSet;

use hgmatch_hypergraph::{EdgeId, Hypergraph, VertexId};

/// All embeddings as hyperedge tuples (`tuple[i]` = data edge matched to
/// query edge `i`), sorted and deduplicated.
pub fn embeddings(data: &Hypergraph, query: &Hypergraph) -> Vec<Vec<u32>> {
    let mut tuples: BTreeSet<Vec<u32>> = BTreeSet::new();
    let nq = query.num_vertices();
    if nq == 0 || query.num_edges() == 0 {
        return Vec::new();
    }
    let mut mapping = vec![u32::MAX; nq];
    let mut used = vec![false; data.num_vertices()];
    recurse(data, query, 0, &mut mapping, &mut used, &mut tuples);
    tuples.into_iter().collect()
}

/// Number of embeddings (hyperedge tuples).
pub fn count(data: &Hypergraph, query: &Hypergraph) -> u64 {
    embeddings(data, query).len() as u64
}

fn recurse(
    data: &Hypergraph,
    query: &Hypergraph,
    u: usize,
    mapping: &mut Vec<u32>,
    used: &mut Vec<bool>,
    tuples: &mut BTreeSet<Vec<u32>>,
) {
    if u == query.num_vertices() {
        if let Some(tuple) = induced_tuple(data, query, mapping) {
            tuples.insert(tuple);
        }
        return;
    }
    let label = query.label(VertexId::from_index(u));
    for v in 0..data.num_vertices() {
        if used[v] || data.label(VertexId::from_index(v)) != label {
            continue;
        }
        mapping[u] = v as u32;
        used[v] = true;
        recurse(data, query, u + 1, mapping, used, tuples);
        used[v] = false;
        mapping[u] = u32::MAX;
    }
}

fn induced_tuple(data: &Hypergraph, query: &Hypergraph, mapping: &[u32]) -> Option<Vec<u32>> {
    let mut tuple = Vec::with_capacity(query.num_edges());
    for e in 0..query.num_edges() {
        let mut mapped: Vec<u32> = query
            .edge_vertices(EdgeId::from_index(e))
            .iter()
            .map(|&w| mapping[w as usize])
            .collect();
        mapped.sort_unstable();
        tuple.push(data.find_edge(&mapped)?.raw());
    }
    Some(tuple)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    #[test]
    fn paper_example() {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        let data = b.build().unwrap();

        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        let query = b.build().unwrap();

        let tuples = embeddings(&data, &query);
        assert_eq!(tuples, vec![vec![0, 2, 4], vec![1, 3, 5]]);
        assert_eq!(count(&data, &query), 2);
    }

    #[test]
    fn automorphisms_collapse() {
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, Label::new(0));
        b.add_edge(vec![0, 1, 2]).unwrap();
        let data = b.build().unwrap();
        let query = data.clone();
        // 3! vertex mappings, one tuple.
        assert_eq!(count(&data, &query), 1);
    }

    #[test]
    fn empty_query_is_zero() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        b.add_edge(vec![0]).unwrap();
        let data = b.build().unwrap();
        let empty = HypergraphBuilder::new().build().unwrap();
        assert_eq!(count(&data, &empty), 0);
    }
}
