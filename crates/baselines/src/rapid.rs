//! RapidMatch-H: subgraph matching on the bipartite conversion.
//!
//! RapidMatch \[71\] is a join-based subgraph matcher for conventional
//! graphs, so the paper feeds it the bipartite incidence graphs of the
//! query and data hypergraphs (Fig. 2) rather than extending it with the
//! match-by-vertex constraint. We reproduce that pipeline: convert both
//! hypergraphs to labelled bipartite graphs (hyperedge nodes labelled by
//! arity) and run a backtracking search over *all* query bipartite nodes.
//! The join order is RapidMatch-flavoured: hyperedge nodes (the join
//! relations) ordered by ascending candidate cardinality, each immediately
//! followed by its unmatched vertex nodes so the relation's incidences bind
//! as early as possible.
//!
//! Counting follows HGMatch's hyperedge-tuple semantics: interchangeable
//! query vertex nodes (same label, same incident hyperedge nodes) are
//! symmetry-broken so every edge-node assignment is counted exactly once
//! (see the crate docs).

use std::time::{Duration, Instant};

use hgmatch_hypergraph::bipartite::BipartiteGraph;
use hgmatch_hypergraph::{EdgeId, Hypergraph, Signature, VertexId};

use crate::framework::BaselineResult;

/// Recursions between timeout checks.
const CHECK_INTERVAL: u64 = 1024;

/// Per-position matching info over the query's bipartite nodes.
#[derive(Debug)]
struct Position {
    /// Query bipartite node at this position.
    node: u32,
    /// Expected data-side node label.
    label: u32,
    /// Earlier positions adjacent in the query bipartite graph.
    adjacent_earlier: Vec<u32>,
    /// `(earlier position, earlier must map smaller)` symmetry constraints.
    symmetry: Vec<(u32, bool)>,
}

struct Ctx<'a> {
    data_bg: &'a BipartiteGraph,
    edge_candidates: &'a [Vec<u32>],
    positions: &'a [Position],
    nq_v: usize,
    mapping: Vec<u32>,
    used: Vec<bool>,
    deadline: Option<Instant>,
    recursions: u64,
    count: u64,
    timed_out: bool,
}

impl Ctx<'_> {
    fn explore(&mut self, pos: usize) {
        self.recursions += 1;
        if self.recursions.is_multiple_of(CHECK_INTERVAL) {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.timed_out = true;
                }
            }
        }
        if self.timed_out {
            return;
        }
        if pos == self.positions.len() {
            self.count += 1;
            return;
        }
        let info = &self.positions[pos];
        let n = info.node;
        let is_vertex_node = (n as usize) < self.nq_v;

        // Candidate source: edge nodes draw from their signature relation;
        // vertex nodes from the neighbours of their first matched adjacent
        // edge node (the join order guarantees one exists).
        let from_neighbors: Vec<u32>;
        let candidates: &[u32] = if is_vertex_node {
            let anchor = *info
                .adjacent_earlier
                .first()
                .expect("vertex nodes follow their first edge node in the order");
            let anchor_data = self.mapping[self.positions[anchor as usize].node as usize];
            from_neighbors = self.data_bg.neighbors(anchor_data).to_vec();
            &from_neighbors
        } else {
            &self.edge_candidates[n as usize - self.nq_v]
        };

        'cands: for &v in candidates {
            if self.used[v as usize] || self.data_bg.label(v) != info.label {
                continue;
            }
            for &(p, earlier_smaller) in &info.symmetry {
                let earlier_v = self.mapping[self.positions[p as usize].node as usize];
                let ok = if earlier_smaller {
                    earlier_v < v
                } else {
                    v < earlier_v
                };
                if !ok {
                    continue 'cands;
                }
            }
            for &p in &info.adjacent_earlier {
                let w = self.mapping[self.positions[p as usize].node as usize];
                if self.data_bg.neighbors(w).binary_search(&v).is_err() {
                    continue 'cands;
                }
            }
            self.mapping[n as usize] = v;
            self.used[v as usize] = true;
            self.explore(pos + 1);
            self.used[v as usize] = false;
            self.mapping[n as usize] = u32::MAX;
        }
    }
}

/// Counts embeddings of `query` in `data` through the bipartite conversion.
pub fn count(data: &Hypergraph, query: &Hypergraph, timeout: Option<Duration>) -> BaselineResult {
    let start = Instant::now();
    let mut result = BaselineResult::default();
    if query.num_edges() == 0 {
        result.elapsed = start.elapsed();
        return result;
    }

    let data_bg = BipartiteGraph::from_hypergraph(data);
    let nq_v = query.num_vertices();
    let nq_e = query.num_edges();
    let nq = nq_v + nq_e;

    // Candidates for query edge nodes: data edge nodes with the same
    // hyperedge signature — RapidMatch's label-filtered relations, answered
    // by the data hypergraph's partitions.
    let edge_candidates: Vec<Vec<u32>> = (0..nq_e)
        .map(|e| {
            let signature = Signature::new(
                query
                    .edge_vertices(EdgeId::from_index(e))
                    .iter()
                    .map(|&u| query.label(VertexId::new(u)))
                    .collect(),
            );
            match data.partition_of(&signature) {
                Some(p) => p
                    .global_ids()
                    .iter()
                    .map(|g| g.raw() + nq_v_offset(data))
                    .collect(),
                None => Vec::new(),
            }
        })
        .collect();
    if edge_candidates.iter().any(Vec::is_empty) {
        result.elapsed = start.elapsed();
        return result;
    }

    let order = join_order(query, &edge_candidates);
    debug_assert_eq!(order.len(), nq);
    let mut pos_of = vec![u32::MAX; nq];
    for (i, &n) in order.iter().enumerate() {
        pos_of[n as usize] = i as u32;
    }

    // Query bipartite labels, aligned with the data conversion's alphabet.
    let sigma = data.num_labels() as u32;
    let q_label = |n: u32| {
        if (n as usize) < nq_v {
            query.label(VertexId::new(n)).raw()
        } else {
            sigma + query.edge_arity(EdgeId::new(n - nq_v as u32)) as u32
        }
    };
    let q_neighbors = |n: u32| -> Vec<u32> {
        if (n as usize) < nq_v {
            query
                .incident_edges(VertexId::new(n))
                .iter()
                .map(|&e| nq_v as u32 + e)
                .collect()
        } else {
            query.edge_vertices(EdgeId::new(n - nq_v as u32)).to_vec()
        }
    };
    // Vertex-node type classes for symmetry breaking.
    let class_key: Vec<(u32, Vec<u32>)> = (0..nq_v)
        .map(|u| {
            (
                query.label(VertexId::from_index(u)).raw(),
                query.incident_edges(VertexId::from_index(u)).to_vec(),
            )
        })
        .collect();

    let positions: Vec<Position> = order
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let adjacent_earlier: Vec<u32> = q_neighbors(n)
                .into_iter()
                .map(|w| pos_of[w as usize])
                .filter(|&p| p < i as u32)
                .collect();
            let mut symmetry = Vec::new();
            if (n as usize) < nq_v {
                for w in 0..nq_v as u32 {
                    if w != n
                        && class_key[w as usize] == class_key[n as usize]
                        && pos_of[w as usize] < i as u32
                    {
                        symmetry.push((pos_of[w as usize], w < n));
                    }
                }
            }
            Position {
                node: n,
                label: q_label(n),
                adjacent_earlier,
                symmetry,
            }
        })
        .collect();

    let mut ctx = Ctx {
        data_bg: &data_bg,
        edge_candidates: &edge_candidates,
        positions: &positions,
        nq_v,
        mapping: vec![u32::MAX; nq],
        used: vec![false; data_bg.num_nodes()],
        deadline: timeout.map(|t| start + t),
        recursions: 0,
        count: 0,
        timed_out: false,
    };
    ctx.explore(0);

    result.count = ctx.count;
    result.recursions = ctx.recursions;
    result.timed_out = ctx.timed_out;
    result.elapsed = start.elapsed();
    result
}

/// Offset turning a data hyperedge id into its bipartite edge-node id.
fn nq_v_offset(data: &Hypergraph) -> u32 {
    data.num_vertices() as u32
}

/// Join order: edge nodes by ascending relation size (connected first),
/// each immediately followed by its not-yet-placed vertex nodes.
fn join_order(query: &Hypergraph, edge_candidates: &[Vec<u32>]) -> Vec<u32> {
    let nq_v = query.num_vertices();
    let ne = query.num_edges();
    let mut order: Vec<u32> = Vec::with_capacity(nq_v + ne);
    let mut vertex_placed = vec![false; nq_v];
    let mut edge_placed = vec![false; ne];
    let mut covered = vec![false; nq_v];

    for _ in 0..ne {
        let next = (0..ne)
            .filter(|&e| !edge_placed[e])
            .min_by_key(|&e| {
                let connected = query
                    .edge_vertices(EdgeId::from_index(e))
                    .iter()
                    .any(|&v| covered[v as usize]);
                let first = order.is_empty();
                (!first && !connected, edge_candidates[e].len(), e)
            })
            .expect("edges remain");
        edge_placed[next] = true;
        order.push(nq_v as u32 + next as u32);
        for &v in query.edge_vertices(EdgeId::from_index(next)) {
            covered[v as usize] = true;
            if !vertex_placed[v as usize] {
                vertex_placed[v as usize] = true;
                order.push(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_pair() -> (Hypergraph, Hypergraph) {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        let data = b.build().unwrap();

        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        let query = b.build().unwrap();
        (data, query)
    }

    #[test]
    fn paper_example_counts_two() {
        let (data, query) = paper_pair();
        let result = count(&data, &query, None);
        assert_eq!(result.count, 2);
        assert!(!result.timed_out);
    }

    #[test]
    fn single_edge_counts_partition() {
        let (data, _) = paper_pair();
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0));
        b.add_vertex(Label::new(1));
        b.add_edge(vec![0, 1]).unwrap();
        let query = b.build().unwrap();
        assert_eq!(count(&data, &query, None).count, 2);
    }

    #[test]
    fn missing_signature_is_zero() {
        let (data, _) = paper_pair();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(1));
        b.add_edge(vec![0, 1]).unwrap();
        let query = b.build().unwrap();
        assert_eq!(count(&data, &query, None).count, 0);
    }

    #[test]
    fn automorphic_vertices_deduped() {
        // {A,A} in {A,A}: one tuple despite two bijections.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        let data = b.build().unwrap();
        let query = data.clone();
        assert_eq!(count(&data, &query, None).count, 1);
    }

    #[test]
    fn shared_vertex_constraints_enforced() {
        // Query: two edges sharing a vertex must map to data edges that
        // actually share the image vertex.
        let mut b = HypergraphBuilder::new();
        b.add_vertices(4, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![2, 3]).unwrap(); // disjoint
        let data = b.build().unwrap();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(3, Label::new(0));
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![1, 2]).unwrap(); // shares u1
        let query = b.build().unwrap();
        assert_eq!(count(&data, &query, None).count, 0);
    }
}
