//! The IHS (incident hyperedge structure) candidate-vertex filter
//! (paper §III-B, after Ha et al. \[30\]).
//!
//! A data vertex `v` is a candidate for query vertex `u` only if:
//!
//! 1. **Degree and label**: `l(u) = l(v)` and `d(u) ≤ d(v)`;
//! 2. **Adjacent nodes**: `|adj(u)| ≤ |adj(v)|`;
//! 3. **Arity containment**: for every arity `a`, `|he_a(u)| ≤ |he_a(v)|`;
//! 4. **Hyperedge labels**: for every signature `s` of a hyperedge incident
//!    to `u`, `v` has at least as many incident hyperedges with signature
//!    `s` — the label-multiset condition of \[30\] strengthened from
//!    "∃ matching hyperedge" to signature-count dominance, which is the
//!    containment the inverted index answers in `O(1)`.

use hgmatch_hypergraph::fxhash::FxHashMap;
use hgmatch_hypergraph::{Hypergraph, Signature, SignatureId, VertexId};

/// Per-query-vertex requirements precomputed once per query.
#[derive(Debug, Clone)]
pub struct VertexRequirements {
    /// Query vertex label.
    pub label: hgmatch_hypergraph::Label,
    /// Query vertex degree `d(u)`.
    pub degree: usize,
    /// `|adj(u)|`.
    pub adjacent: usize,
    /// `(arity, |he_a(u)|)` pairs, ascending by arity.
    pub arity_counts: Vec<(usize, usize)>,
    /// `(data signature id, required count)` for signatures present in the
    /// data hypergraph; `None` when some incident query signature is absent
    /// from the data entirely (no candidate can exist).
    pub signature_counts: Option<Vec<(SignatureId, usize)>>,
}

impl VertexRequirements {
    /// Computes the requirements of query vertex `u`.
    pub fn compute(data: &Hypergraph, query: &Hypergraph, u: VertexId) -> Self {
        let incident = query.incident_edges(u);
        let mut arity_counts: FxHashMap<usize, usize> = FxHashMap::default();
        let mut signature_counts: FxHashMap<SignatureId, usize> = FxHashMap::default();
        let mut feasible = true;
        for &e in incident {
            let eid = hgmatch_hypergraph::EdgeId::new(e);
            let arity = query.edge_arity(eid);
            *arity_counts.entry(arity).or_insert(0) += 1;
            let signature = Signature::new(
                query
                    .edge_vertices(eid)
                    .iter()
                    .map(|&w| query.label(VertexId::new(w)))
                    .collect(),
            );
            match data.interner().get(&signature) {
                Some(sid) => *signature_counts.entry(sid).or_insert(0) += 1,
                None => feasible = false,
            }
        }
        let mut arity_counts: Vec<(usize, usize)> = arity_counts.into_iter().collect();
        arity_counts.sort_unstable();
        let signature_counts = feasible.then(|| {
            let mut v: Vec<(SignatureId, usize)> = signature_counts.into_iter().collect();
            v.sort_unstable();
            v
        });
        Self {
            label: query.label(u),
            degree: query.degree(u),
            adjacent: query.adjacent_count(u),
            arity_counts,
            signature_counts,
        }
    }

    /// Tests whether data vertex `v` passes the four IHS conditions.
    pub fn admits(&self, data: &Hypergraph, v: VertexId) -> bool {
        let Some(signature_counts) = &self.signature_counts else {
            return false;
        };
        if data.label(v) != self.label || data.degree(v) < self.degree {
            return false;
        }
        if data.adjacent_count(v) < self.adjacent {
            return false;
        }
        for &(arity, required) in &self.arity_counts {
            if data.degree_with_arity(v, arity) < required {
                return false;
            }
        }
        for &(sid, required) in signature_counts {
            if data.degree_with_signature(v, sid) < required {
                return false;
            }
        }
        true
    }
}

/// Builds the IHS-filtered candidate set of every query vertex: sorted data
/// vertex ids per query vertex.
pub fn build_candidate_sets(data: &Hypergraph, query: &Hypergraph) -> Vec<Vec<u32>> {
    (0..query.num_vertices())
        .map(|u| {
            let req = VertexRequirements::compute(data, query, VertexId::from_index(u));
            (0..data.num_vertices() as u32)
                .filter(|&v| req.admits(data, VertexId::new(v)))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hgmatch_hypergraph::{HypergraphBuilder, Label};

    fn paper_data() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1, 2, 0] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![4, 6]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![3, 5, 6]).unwrap();
        b.add_edge(vec![0, 1, 4, 6]).unwrap();
        b.add_edge(vec![2, 3, 4, 5]).unwrap();
        b.build().unwrap()
    }

    fn paper_query() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for &l in &[0u32, 2, 0, 0, 1] {
            b.add_vertex(Label::new(l));
        }
        b.add_edge(vec![2, 4]).unwrap();
        b.add_edge(vec![0, 1, 2]).unwrap();
        b.add_edge(vec![0, 1, 3, 4]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn candidates_respect_labels() {
        let data = paper_data();
        let query = paper_query();
        let cands = build_candidate_sets(&data, &query);
        assert_eq!(cands.len(), 5);
        // u4 is the only B query vertex; v4 is the only B data vertex.
        assert_eq!(cands[4], vec![4]);
        // All candidates carry the right label.
        for (u, cu) in cands.iter().enumerate() {
            for &v in cu {
                assert_eq!(
                    data.label(VertexId::new(v)),
                    query.label(VertexId::from_index(u))
                );
            }
        }
    }

    #[test]
    fn true_matches_survive() {
        // The two embeddings map u2 → v2 / v6 — both must be candidates.
        let data = paper_data();
        let query = paper_query();
        let cands = build_candidate_sets(&data, &query);
        assert!(cands[2].contains(&2));
        assert!(cands[2].contains(&6));
        // u0 → v0 / v3.
        assert!(cands[0].contains(&0));
        assert!(cands[0].contains(&3));
    }

    #[test]
    fn degree_condition_prunes() {
        // u2 has degree 2 (in q0 and q1); v3 has the right label A but its
        // incident signatures are {A,A,C} and {A,A,B,C}, not matching u2's
        // {A,B} requirement — the signature condition must prune it.
        let data = paper_data();
        let query = paper_query();
        let cands = build_candidate_sets(&data, &query);
        assert!(!cands[2].contains(&3));
    }

    #[test]
    fn missing_signature_empties_candidates() {
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        b.add_vertices(2, Label::new(1)); // {B,B} signature absent from data
        b.add_edge(vec![0, 1]).unwrap();
        let query = b.build().unwrap();
        let cands = build_candidate_sets(&data, &query);
        assert!(cands[0].is_empty());
        assert!(cands[1].is_empty());
    }

    #[test]
    fn arity_containment_prunes() {
        // Query vertex with two incident arity-2 edges requires data
        // vertices with ≥2 incident arity-2 edges: only v4 qualifies among
        // B… make an A-query: u0 in two 2-edges {A,B},{A,B}? Data A-vertices
        // in two arity-2 {A,B} edges: none (v2 and v6 have one each).
        let data = paper_data();
        let mut b = HypergraphBuilder::new();
        b.add_vertex(Label::new(0)); // u0 A
        b.add_vertex(Label::new(1)); // u1 B
        b.add_vertex(Label::new(1)); // u2 B
        b.add_edge(vec![0, 1]).unwrap();
        b.add_edge(vec![0, 2]).unwrap();
        let query = b.build().unwrap();
        let cands = build_candidate_sets(&data, &query);
        assert!(
            cands[0].is_empty(),
            "no data A-vertex has two {{A,B}} edges"
        );
    }
}
