//! Property-based agreement: all baselines and HGMatch against the
//! brute-force oracle on arbitrary tiny instances.

use hgmatch_baselines::{bruteforce, run_baseline, BaselineAlgorithm};
use hgmatch_core::Matcher;
use hgmatch_hypergraph::{EdgeId, Hypergraph, HypergraphBuilder, Label, VertexId};
use proptest::prelude::*;

fn hypergraph_strategy() -> impl Strategy<Value = Hypergraph> {
    (3usize..9).prop_flat_map(|nv| {
        let labels = proptest::collection::vec(0u32..2, nv);
        let edges = proptest::collection::vec(
            proptest::collection::btree_set(0u32..nv as u32, 1..4usize.min(nv)),
            1..10,
        );
        (labels, edges).prop_map(|(labels, edges)| {
            let mut b = HypergraphBuilder::new();
            for &l in &labels {
                b.add_vertex(Label::new(l));
            }
            for e in edges {
                let _ = b.add_edge(e.into_iter().collect()).unwrap();
            }
            b.build().unwrap()
        })
    })
}

fn planted_query(data: &Hypergraph, picks: &[u8]) -> Option<Hypergraph> {
    if data.num_edges() == 0 {
        return None;
    }
    let mut edges = vec![picks.first().map(|&p| p as u32).unwrap_or(0) % data.num_edges() as u32];
    for &p in picks.iter().skip(1) {
        let mut frontier: Vec<u32> = Vec::new();
        for &e in &edges {
            for &v in data.edge_vertices(EdgeId::new(e)) {
                frontier.extend_from_slice(data.incident_edges(VertexId::new(v)));
            }
        }
        frontier.sort_unstable();
        frontier.dedup();
        frontier.retain(|e| !edges.contains(e));
        if frontier.is_empty() {
            break;
        }
        edges.push(frontier[p as usize % frontier.len()]);
    }
    let mut vertices: Vec<u32> = edges
        .iter()
        .flat_map(|&e| data.edge_vertices(EdgeId::new(e)))
        .copied()
        .collect();
    vertices.sort_unstable();
    vertices.dedup();
    if vertices.len() > 8 {
        return None; // keep the factorial oracle tractable
    }
    let mut b = HypergraphBuilder::new();
    for &v in &vertices {
        b.add_vertex(data.label(VertexId::new(v)));
    }
    for &e in &edges {
        let renumbered: Vec<u32> = data
            .edge_vertices(EdgeId::new(e))
            .iter()
            .map(|&v| vertices.binary_search(&v).unwrap() as u32)
            .collect();
        b.add_edge(renumbered).unwrap();
    }
    Some(b.build().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn everyone_matches_the_oracle(
        data in hypergraph_strategy(),
        picks in proptest::collection::vec(0u8..255, 1..4),
    ) {
        let Some(query) = planted_query(&data, &picks) else { return Ok(()) };
        let oracle = bruteforce::count(&data, &query);
        prop_assert!(oracle >= 1, "planted queries always match");

        let hg = Matcher::new(&data).count(&query).unwrap();
        prop_assert_eq!(hg, oracle, "HGMatch");

        for alg in BaselineAlgorithm::all() {
            let got = run_baseline(alg, &data, &query, None).count;
            prop_assert_eq!(got, oracle, "{}", alg.name());
        }
    }

    #[test]
    fn non_planted_queries_also_agree(
        data in hypergraph_strategy(),
        qdata in hypergraph_strategy(),
        picks in proptest::collection::vec(0u8..255, 1..3),
    ) {
        // Query sampled from a *different* hypergraph: zero matches are now
        // possible, exercising the empty-result paths.
        let Some(query) = planted_query(&qdata, &picks) else { return Ok(()) };
        let oracle = bruteforce::count(&data, &query);
        let hg = Matcher::new(&data).count(&query).unwrap();
        prop_assert_eq!(hg, oracle, "HGMatch");
        for alg in BaselineAlgorithm::all() {
            let got = run_baseline(alg, &data, &query, None).count;
            prop_assert_eq!(got, oracle, "{}", alg.name());
        }
    }
}
