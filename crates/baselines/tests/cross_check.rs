//! Cross-system correctness: every baseline and every HGMatch executor
//! must agree with the brute-force oracle on exhaustive small instances,
//! including the exact embedding tuples.

use hgmatch_baselines::{bruteforce, run_baseline, BaselineAlgorithm};
use hgmatch_core::{CollectSink, MatchConfig, Matcher};
use hgmatch_datasets::testgen::{random_hypergraph, random_subquery};
use hgmatch_datasets::{
    generate, sample_query, standard_settings, ArityDistribution, GeneratorConfig,
};

/// Exhaustive agreement against brute force on tiny instances (brute force
/// is factorial in |V(q)|, so queries stay small).
#[test]
fn all_systems_match_bruteforce() {
    for seed in 0..10u64 {
        let data = random_hypergraph(seed, 9, 14, 2, 3);
        for k in [1usize, 2, 3] {
            let Some(query) = random_subquery(&data, seed * 13 + k as u64, k) else {
                continue;
            };
            if query.num_vertices() > 8 {
                continue; // keep brute force tractable
            }
            let oracle = bruteforce::count(&data, &query);
            assert!(oracle >= 1, "planted query (seed {seed}, k {k})");

            let hg = Matcher::new(&data).count(&query).unwrap();
            assert_eq!(hg, oracle, "HGMatch vs oracle (seed {seed}, k {k})");

            for alg in BaselineAlgorithm::all() {
                let result = run_baseline(alg, &data, &query, None);
                assert_eq!(
                    result.count,
                    oracle,
                    "{} vs oracle (seed {seed}, k {k})",
                    alg.name()
                );
            }
        }
    }
}

/// The enumerated tuples (not just counts) must match the oracle.
#[test]
fn hgmatch_tuples_match_bruteforce() {
    for seed in 0..6u64 {
        let data = random_hypergraph(seed + 50, 8, 12, 2, 3);
        let Some(query) = random_subquery(&data, seed, 2) else {
            continue;
        };
        if query.num_vertices() > 8 {
            continue;
        }
        let oracle = bruteforce::embeddings(&data, &query);
        let sink = CollectSink::new();
        Matcher::new(&data).run(&query, &sink).unwrap();
        let ours: Vec<Vec<u32>> = sink
            .into_results()
            .into_iter()
            .map(|m| m.raw().to_vec())
            .collect();
        assert_eq!(ours, oracle, "tuple sets differ (seed {seed})");
    }
}

/// Single-label stress: everything is an automorphism candidate.
#[test]
fn unlabeled_stress_agreement() {
    for seed in 0..6u64 {
        let data = random_hypergraph(seed + 200, 7, 10, 1, 3);
        for k in [2usize, 3] {
            let Some(query) = random_subquery(&data, seed * 7 + k as u64, k) else {
                continue;
            };
            if query.num_vertices() > 7 {
                continue;
            }
            let oracle = bruteforce::count(&data, &query);
            let hg = Matcher::new(&data).count(&query).unwrap();
            assert_eq!(hg, oracle, "HGMatch (seed {seed}, k {k})");
            for alg in BaselineAlgorithm::all() {
                let got = run_baseline(alg, &data, &query, None).count;
                assert_eq!(got, oracle, "{} (seed {seed}, k {k})", alg.name());
            }
        }
    }
}

/// Mid-size agreement between HGMatch and baselines (no oracle — brute
/// force would be infeasible; this checks mutual consistency instead).
#[test]
fn midsize_mutual_agreement() {
    let data = generate(&GeneratorConfig {
        num_vertices: 120,
        num_edges: 360,
        num_labels: 3,
        label_skew: 0.4,
        arity: ArityDistribution::Uniform { min: 2, max: 4 },
        degree_skew: 0.6,
        seed: 99,
    });
    let mut checked = 0;
    for (si, setting) in standard_settings().iter().enumerate().take(3) {
        for seed in 0..3u64 {
            let Some(query) = sample_query(&data, setting, seed * 5 + si as u64) else {
                continue;
            };
            let hg1 = Matcher::new(&data).count(&query).unwrap();
            let hg4 = Matcher::with_config(&data, MatchConfig::parallel(4))
                .count(&query)
                .unwrap();
            assert_eq!(
                hg1, hg4,
                "thread disagreement ({}, seed {seed})",
                setting.name
            );
            for alg in BaselineAlgorithm::all() {
                let got = run_baseline(alg, &data, &query, None).count;
                assert_eq!(got, hg1, "{} ({}, seed {seed})", alg.name(), setting.name);
            }
            checked += 1;
        }
    }
    assert!(checked >= 5, "too few queries sampled ({checked})");
}
